module Buchi = Sl_buchi.Buchi
module Closure = Sl_buchi.Closure
module Ops = Sl_buchi.Ops
module Complement = Sl_buchi.Complement
module Lang = Sl_buchi.Lang
module Decompose = Sl_buchi.Decompose
module Patterns = Sl_buchi.Patterns
module Lasso = Sl_word.Lasso

let check = Alcotest.(check bool)

let lassos = Lasso.enumerate ~alphabet:2 ~max_prefix:3 ~max_cycle:3
let small_lassos = Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:2

(* Semantic oracles for Rem's examples on lasso words. *)
let sem_p1 w = Lasso.at w 0 = 0
let sem_p2 w = Lasso.at w 0 <> 0
let sem_p3 w = sem_p1 w && Lasso.count_letter w 1 <> `Finitely 0
let sem_p4 w = match Lasso.count_letter w 0 with
  | `Finitely _ -> true
  | `Infinitely -> false
let sem_p5 w = Lasso.count_letter w 0 = `Infinitely

let test_membership_against_oracles () =
  let cases =
    [ ("p0", Patterns.p0, fun _ -> false);
      ("p1", Patterns.p1, sem_p1);
      ("p2", Patterns.p2, sem_p2);
      ("p3", Patterns.p3, sem_p3);
      ("p4", Patterns.p4, sem_p4);
      ("p5", Patterns.p5, sem_p5);
      ("p6", Patterns.p6, fun _ -> true) ]
  in
  List.iter
    (fun (name, automaton, oracle) ->
      List.iter
        (fun w ->
          check
            (Printf.sprintf "%s on %s" name (Lasso.to_string w))
            (oracle w)
            (Buchi.accepts_lasso automaton w))
        lassos)
    cases

let test_rename_start_and_prefix_nfa () =
  (* B(q) semantics (Section 4.4's notation, word case): moving the start
     of p3 to its "waiting" state drops the root-letter requirement. *)
  let b1 = Buchi.rename_start Patterns.p3 1 in
  List.iter
    (fun w ->
      (* From state 1, acceptance = eventually a b. *)
      check "B(q) semantics"
        (Lasso.count_letter w 1 <> `Finitely 0)
        (Buchi.accepts_lasso b1 w))
    lassos;
  (* The prefix NFA of p5 accepts every finite word (all states useful). *)
  let nfa = Buchi.to_prefix_nfa Patterns.p5 in
  check "prefix nfa total here" true
    (Sl_nfa.Dfa.is_total_language (Sl_nfa.Nfa.determinize nfa));
  check "size info mentions states" true
    (String.length (Buchi.size_info Patterns.p5) > 0)

let test_emptiness () =
  check "p0 empty" true (Buchi.is_empty Patterns.p0);
  check "p5 nonempty" false (Buchi.is_empty Patterns.p5);
  (* Accepting state not on a cycle: language empty. *)
  let dead_end =
    Buchi.of_edges ~alphabet:2 ~nstates:2 ~start:0 ~edges:[ (0, 0, 1) ]
      ~accepting:[ 1 ]
  in
  check "accepting dead-end is empty" true (Buchi.is_empty dead_end)

let test_witness () =
  (match Buchi.nonempty_witness Patterns.p5 with
  | None -> Alcotest.fail "p5 nonempty"
  | Some w ->
      check "witness accepted" true (Buchi.accepts_lasso Patterns.p5 w);
      check "witness satisfies GF a" true (sem_p5 w));
  check "p0 has no witness" true (Buchi.nonempty_witness Patterns.p0 = None);
  (* Every pattern's witness is in its language. *)
  List.iter
    (fun (_, _, b) ->
      match Buchi.nonempty_witness b with
      | None -> check "only p0 empty" true (Buchi.is_empty b)
      | Some w -> check "witness accepted" true (Buchi.accepts_lasso b w))
    Patterns.rem_examples

(* lcl on lassos, computed directly from the oracle semantics: w is in
   lcl(P) iff every finite prefix of w extends to some word in P. For a
   sampled check we use: w in lcl(P) iff for each prefix length k there is
   a lasso in the sample extending prefix_k(w). This under-approximates
   extension, so we only use it on the specific examples below where the
   paper tells us the closure exactly. *)

let test_closure_rem_examples () =
  (* The paper, Section 2.3: closure of p3 is p1; closures of p4, p5 are
     Sigma^omega; p0, p1, p2, p6 are closed. *)
  let bcl = Closure.bcl in
  check "bcl p3 = p1 (exact)" true (Lang.equal (bcl Patterns.p3) Patterns.p1);
  check "bcl p4 universal" true (Lang.is_universal (bcl Patterns.p4));
  check "bcl p5 universal" true (Lang.is_universal (bcl Patterns.p5));
  List.iter
    (fun (name, p) ->
      check (name ^ " closed") true (Lang.equal (bcl p) p))
    [ ("p0", Patterns.p0); ("p1", Patterns.p1); ("p2", Patterns.p2);
      ("p6", Patterns.p6) ]

let test_closure_is_lattice_closure () =
  (* Extensive, idempotent, monotone (sampled on lassos; exact where
     cheap). *)
  List.iter
    (fun (name, _, b) ->
      let c = Closure.bcl b in
      check (name ^ ": extensive") true
        (List.for_all
           (fun w ->
             (not (Buchi.accepts_lasso b w)) || Buchi.accepts_lasso c w)
           lassos);
      check (name ^ ": idempotent") true (Lang.equal (Closure.bcl c) c))
    Patterns.rem_examples;
  (* Monotone via Lemma 3 shape: bcl(A cap B) included in bcl A. *)
  let inter = Ops.intersect Patterns.p3 Patterns.p5 in
  check "monotone on intersection" true
    (Lang.subset (Closure.bcl inter) (Closure.bcl Patterns.p3))

let test_closure_shape () =
  check "bcl closure-shaped" true
    (Sl_buchi.Closure.is_closure_shaped (Closure.bcl Patterns.p3));
  check "p3 itself not closure-shaped" false
    (Sl_buchi.Closure.is_closure_shaped Patterns.p3)

let test_naive_prune_ablation () =
  (* An accepting dead-end branch makes the naive pruning (keep states that
     reach any accepting state) wrong: state 1 loops on a and can exit to
     an accepting dead-end 3, so naive keeps it, although no accepting run
     ever visits it. *)
  let b =
    Buchi.of_edges ~alphabet:2 ~nstates:4 ~start:0
      ~edges:[ (0, 0, 1); (1, 0, 1); (1, 1, 3); (0, 1, 2); (2, 1, 2) ]
      ~accepting:[ 2; 3 ]
  in
  let correct = Closure.bcl b in
  let naive = Closure.naive_prune b in
  let a_omega = Lasso.constant 0 in
  check "correct closure rejects a^w" false
    (Buchi.accepts_lasso correct a_omega);
  check "naive closure wrongly accepts a^w" true
    (Buchi.accepts_lasso naive a_omega);
  (* And a^w is indeed outside lcl L(B): L(B) = b^w only, whose prefixes
     are b^n. *)
  check "L(B) = {b^w}" true
    (List.for_all
       (fun w -> Buchi.accepts_lasso b w = Lasso.equal w (Lasso.constant 1))
       lassos)

let test_intersect_union_semantics () =
  let pairs =
    [ (Patterns.p1, Patterns.p5); (Patterns.p3, Patterns.p4);
      (Patterns.p2, Patterns.p5); (Patterns.p4, Patterns.p5) ]
  in
  List.iter
    (fun (x, y) ->
      let i = Ops.intersect x y and u = Ops.union x y in
      List.iter
        (fun w ->
          check "intersection semantics"
            (Buchi.accepts_lasso x w && Buchi.accepts_lasso y w)
            (Buchi.accepts_lasso i w);
          check "union semantics"
            (Buchi.accepts_lasso x w || Buchi.accepts_lasso y w)
            (Buchi.accepts_lasso u w))
        lassos)
    pairs

let test_complement_closed () =
  let closed = Closure.bcl Patterns.p3 in
  let comp = Complement.complement_closed closed in
  List.iter
    (fun w ->
      check "complement flips membership"
        (not (Buchi.accepts_lasso closed w))
        (Buchi.accepts_lasso comp w))
    lassos;
  (* Complement of the empty language is universal. *)
  check "comp of empty" true
    (Lang.is_universal (Complement.complement_closed Patterns.p0))

let test_rank_based_complement () =
  List.iter
    (fun (name, _, b) ->
      let comp = Complement.rank_based b in
      List.iter
        (fun w ->
          check
            (Printf.sprintf "rank complement %s on %s" name
               (Lasso.to_string w))
            (not (Buchi.accepts_lasso b w))
            (Buchi.accepts_lasso comp w))
        small_lassos)
    Patterns.rem_examples

let test_subset_equal () =
  check "p3 subset p1" true (Lang.subset Patterns.p3 Patterns.p1);
  check "p1 not subset p3" false (Lang.subset Patterns.p1 Patterns.p3);
  check "p0 subset everything" true (Lang.subset Patterns.p0 Patterns.p4);
  check "everything subset p6" true (Lang.subset Patterns.p5 Patterns.p6);
  check "p4 and p5 disjoint... as subset" false
    (Lang.subset Patterns.p4 Patterns.p5);
  check "p5 equal p5" true (Lang.equal Patterns.p5 Patterns.p5);
  check "sampled agrees" true
    (Lang.sampled_subset ~max_prefix:3 ~max_cycle:3 Patterns.p3 Patterns.p1)

let test_classification_rem_table () =
  (* The table of Section 2.3. *)
  let expected =
    [ ("p0", Decompose.Safety); ("p1", Decompose.Safety);
      ("p2", Decompose.Safety); ("p3", Decompose.Neither);
      ("p4", Decompose.Liveness); ("p5", Decompose.Liveness);
      ("p6", Decompose.Both) ]
  in
  List.iter2
    (fun (name, _, b) (name', expected_class) ->
      assert (name = name');
      Alcotest.(check string)
        (name ^ " classification")
        (Decompose.classification_to_string expected_class)
        (Decompose.classification_to_string (Decompose.classify b)))
    Patterns.rem_examples expected

let test_decomposition_rem_examples () =
  List.iter
    (fun (name, _, b) ->
      let d = Decompose.decompose b in
      Alcotest.(check (list (pair string string)))
        (name ^ " decomposition verifies")
        []
        (Decompose.verify_exact d))
    Patterns.rem_examples

let test_decomposition_protocol () =
  List.iter
    (fun (name, b) ->
      let d = Decompose.decompose b in
      Alcotest.(check (list (pair string string)))
        (name ^ " decomposition verifies") []
        (Decompose.verify_sampled ~max_prefix:2 ~max_cycle:2 d))
    [ ("request_response", Patterns.request_response);
      ("no_grant_without_request", Patterns.no_grant_without_request);
      ("always_eventually_grant", Patterns.always_eventually_grant) ];
  (* Protocol classifications. *)
  check "no_grant_without_request is safety" true
    (Decompose.is_safety Patterns.no_grant_without_request);
  check "always_eventually_grant is liveness" true
    (Decompose.is_liveness Patterns.always_eventually_grant);
  (* The classic fact: "every request is eventually granted" is a pure
     liveness property — any finite prefix extends to a satisfying word. *)
  Alcotest.(check string) "request_response is liveness" "liveness"
    (Decompose.classification_to_string
       (Decompose.classify Patterns.request_response))

let test_decomposition_extremal () =
  (* Theorem 6: the safety part bcl B is the strongest possible: any
     closed set S with L(B) = S cap Z satisfies bcl B subset S. Sampled
     check with S drawn from our pattern automata. *)
  let b = Patterns.p3 in
  let d = Decompose.decompose b in
  (* p1 is closed and p3 = p1 cap (p3 union complement p1)... simply check
     bcl p3 = p1 is a subset of p1 (trivially) and that the liveness part
     is the weakest: any liveness L with B = bcl B cap L contains B union
     not bcl B. *)
  check "safety part subset p1" true (Lang.subset d.Decompose.safety Patterns.p1);
  check "liveness part contains B" true
    (Lang.sampled_subset ~max_prefix:3 ~max_cycle:3 b d.Decompose.liveness)

let random_buchi seed n =
  Buchi.random ~seed ~alphabet:2 ~nstates:n ~density:0.3
    ~accepting_fraction:0.4 ()

let prop_decomposition_random =
  QCheck.Test.make ~name:"random decomposition: meet recovers language"
    ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 1 6))
    (fun (seed, n) ->
      let b = random_buchi seed n in
      let d = Decompose.decompose b in
      Decompose.verify_sampled ~max_prefix:2 ~max_cycle:3 d = [])

let prop_closure_extensive_idempotent =
  QCheck.Test.make ~name:"random bcl: extensive and idempotent" ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 1 6))
    (fun (seed, n) ->
      let b = random_buchi seed n in
      let c = Closure.bcl b in
      List.for_all
        (fun w -> (not (Buchi.accepts_lasso b w)) || Buchi.accepts_lasso c w)
        small_lassos
      && Lang.equal (Closure.bcl c) c)

let prop_complement_closed_random =
  QCheck.Test.make ~name:"random closure automaton: safety complement"
    ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 1 6))
    (fun (seed, n) ->
      let c = Closure.bcl (random_buchi seed n) in
      let comp = Complement.complement_closed c in
      List.for_all
        (fun w -> Buchi.accepts_lasso comp w = not (Buchi.accepts_lasso c w))
        small_lassos)

let prop_rank_complement_random =
  QCheck.Test.make ~name:"random rank-based complement agrees on lassos"
    ~count:30
    QCheck.(pair (int_bound 10_000) (int_range 1 4))
    (fun (seed, n) ->
      let b = random_buchi seed n in
      match Complement.rank_based ~max_states:100_000 b with
      | comp ->
          List.for_all
            (fun w ->
              Buchi.accepts_lasso comp w = not (Buchi.accepts_lasso b w))
            small_lassos
      | exception Complement.Too_large _ -> QCheck.assume_fail ())

let prop_lemma3_languages =
  QCheck.Test.make ~name:"lemma 3 on language lattice (sampled)" ~count:40
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (s1, s2) ->
      let a = random_buchi s1 4 and b = random_buchi s2 4 in
      let lhs = Closure.bcl (Ops.intersect a b) in
      let rhs = Ops.intersect (Closure.bcl a) (Closure.bcl b) in
      List.for_all
        (fun w ->
          (not (Buchi.accepts_lasso lhs w)) || Buchi.accepts_lasso rhs w)
        small_lassos)

(* --- Monitors --- *)

module Monitor = Sl_buchi.Monitor

let test_monitor_safety_policy () =
  let m = Monitor.create Patterns.no_grant_without_request in
  check "fresh monitor admissible" true (Monitor.verdict m = Admissible);
  (* quiet, req, grant: fine. *)
  check "good trace" true (Monitor.feed m [ 0; 1; 2 ] = Admissible);
  Monitor.reset m;
  (* A bare grant trips immediately with the shortest bad prefix. *)
  (match Monitor.feed m [ 0; 2; 0 ] with
  | Violation bad -> Alcotest.(check (list int)) "bad prefix" [ 0; 2 ] bad
  | Admissible -> Alcotest.fail "should trip");
  (* Tripping is irrevocable. *)
  check "still tripped" true
    (match Monitor.step m 1 with Violation _ -> true | _ -> false);
  check "not vacuous" false (Monitor.is_vacuous m)

let test_monitor_liveness_is_vacuous () =
  (* Pure liveness has no enforceable content: the monitor never trips. *)
  let m = Monitor.create Patterns.request_response in
  check "vacuous" true (Monitor.is_vacuous m);
  check "nothing bad ever" true
    (Monitor.feed m [ 1; 0; 0; 0; 0; 0 ] = Admissible);
  check "no bad prefix exists" true
    (Monitor.shortest_bad_prefix Patterns.request_response = None)

let test_monitor_shortest_bad_prefix () =
  (* For p1 ("first symbol is a") the shortest bad prefix is [b]. *)
  Alcotest.(check (option (list int))) "p1 bad prefix" (Some [ 1 ])
    (Monitor.shortest_bad_prefix Patterns.p1);
  (* For p3 the monitor watches its safety part p1: same bad prefix. *)
  Alcotest.(check (option (list int))) "p3 bad prefix" (Some [ 1 ])
    (Monitor.shortest_bad_prefix Patterns.p3);
  (* The empty property is bad from the start. *)
  Alcotest.(check (option (list int))) "empty property" (Some [])
    (match Monitor.verdict (Monitor.create Patterns.p0) with
    | Violation bad -> Some bad
    | Admissible -> None)

(* --- Generalized Büchi --- *)

module Gnba = Sl_buchi.Gnba

let test_gnba_roundtrip () =
  (* of_buchi then degeneralize preserves the language (k = 1). *)
  List.iter
    (fun (name, _, b) ->
      let g = Gnba.of_buchi b in
      let d = Gnba.degeneralize g in
      List.iter
        (fun w ->
          check (name ^ ": direct = buchi")
            (Buchi.accepts_lasso b w) (Gnba.accepts_lasso g w);
          check (name ^ ": degeneralized = buchi")
            (Buchi.accepts_lasso b w) (Buchi.accepts_lasso d w))
        small_lassos)
    Patterns.rem_examples

let test_gnba_two_sets () =
  (* GF a AND GF b as one automaton with two acceptance sets over a
     single state-per-letter structure. *)
  let g =
    Gnba.make ~alphabet:2 ~nstates:2 ~start:0
      ~delta:[| [| [ 0 ]; [ 1 ] |]; [| [ 0 ]; [ 1 ] |] |]
      ~acceptance:[ [| true; false |]; [| false; true |] ]
  in
  let d = Gnba.degeneralize g in
  List.iter
    (fun w ->
      let expected =
        Lasso.count_letter w 0 = `Infinitely
        && Lasso.count_letter w 1 = `Infinitely
      in
      check "GF a & GF b direct" expected (Gnba.accepts_lasso g w);
      check "GF a & GF b degeneralized" expected (Buchi.accepts_lasso d w))
    lassos;
  check "nonempty" false (Gnba.is_empty g);
  (* Making the two sets disjoint and unreachable-together: empty. *)
  let g2 =
    Gnba.make ~alphabet:2 ~nstates:2 ~start:0
      ~delta:[| [| [ 0 ]; [] |]; [| []; [ 1 ] |] |]
      ~acceptance:[ [| true; false |]; [| false; true |] ]
  in
  check "incompatible sets: empty" true (Gnba.is_empty g2)

let test_gnba_empty_acceptance () =
  (* Empty acceptance list means every run accepts. *)
  let g =
    Gnba.make ~alphabet:2 ~nstates:1 ~start:0
      ~delta:[| [| [ 0 ]; [ 0 ] |] |] ~acceptance:[]
  in
  check "universal" true
    (List.for_all (Gnba.accepts_lasso g) small_lassos)

(* --- Simulation reduction --- *)

module Simulation = Sl_buchi.Simulation

let test_simulation_preserves_language () =
  List.iter
    (fun (name, _, b) ->
      let q = Simulation.quotient b and r = Simulation.reduce b in
      List.iter
        (fun w ->
          check (name ^ ": quotient") (Buchi.accepts_lasso b w)
            (Buchi.accepts_lasso q w);
          check (name ^ ": reduce") (Buchi.accepts_lasso b w)
            (Buchi.accepts_lasso r w))
        small_lassos;
      check (name ^ ": never larger") true (r.Buchi.nstates <= b.Buchi.nstates))
    Patterns.rem_examples

let test_simulation_shrinks_liveness_part () =
  (* The union-built liveness automaton of p3 has mergeable states. *)
  let d = Decompose.decompose Patterns.p3 in
  let reduced = Simulation.reduce d.Decompose.liveness in
  check "strictly smaller" true
    (reduced.Buchi.nstates < d.Decompose.liveness.Buchi.nstates);
  List.iter
    (fun w ->
      check "language kept"
        (Buchi.accepts_lasso d.Decompose.liveness w)
        (Buchi.accepts_lasso reduced w))
    lassos

let prop_simulation_random =
  QCheck.Test.make ~name:"random simulation quotient preserves language"
    ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 1 6))
    (fun (seed, n) ->
      let b = random_buchi seed n in
      let r = Simulation.reduce b in
      List.for_all
        (fun w -> Buchi.accepts_lasso b w = Buchi.accepts_lasso r w)
        small_lassos)

let test_language_lattice_instance () =
  (* Run the generic Theorem 2 construction over the automata-backed
     Boolean algebra and verify the decomposition of p3. *)
  let module L = (val Decompose.language_lattice ~alphabet:2 ()) in
  let module T = Sl_core.Theory.Make (L) in
  match T.decompose ~cl2:Decompose.lcl Patterns.p3 with
  | None -> Alcotest.fail "language lattice complement failed"
  | Some d ->
      check "generic decomposition verifies" true
        (T.verify ~cl1:Decompose.lcl ~cl2:Decompose.lcl d = []);
      check "safety part equals bcl p3" true
        (Lang.equal d.Sl_core.Theory.safety (Closure.bcl Patterns.p3));
      check "p3 is not safety in lattice terms" false
        (T.is_safety Decompose.lcl Patterns.p3);
      check "p4 is liveness in lattice terms" true
        (T.is_liveness Decompose.lcl Patterns.p4)

let tests =
  [ Alcotest.test_case "lasso membership vs oracles" `Quick
      test_membership_against_oracles;
    Alcotest.test_case "rename_start / prefix NFA" `Quick
      test_rename_start_and_prefix_nfa;
    Alcotest.test_case "emptiness" `Quick test_emptiness;
    Alcotest.test_case "nonemptiness witnesses" `Quick test_witness;
    Alcotest.test_case "closure of Rem examples" `Quick
      test_closure_rem_examples;
    Alcotest.test_case "closure is a lattice closure" `Quick
      test_closure_is_lattice_closure;
    Alcotest.test_case "closure shape" `Quick test_closure_shape;
    Alcotest.test_case "naive pruning ablation" `Quick
      test_naive_prune_ablation;
    Alcotest.test_case "intersection and union" `Quick
      test_intersect_union_semantics;
    Alcotest.test_case "safety complement" `Quick test_complement_closed;
    Alcotest.test_case "rank-based complement" `Quick
      test_rank_based_complement;
    Alcotest.test_case "subset and equality" `Quick test_subset_equal;
    Alcotest.test_case "Rem classification table" `Quick
      test_classification_rem_table;
    Alcotest.test_case "decomposition of Rem examples" `Quick
      test_decomposition_rem_examples;
    Alcotest.test_case "decomposition of protocols" `Quick
      test_decomposition_protocol;
    Alcotest.test_case "extremal decomposition" `Quick
      test_decomposition_extremal;
    Alcotest.test_case "language lattice instance" `Quick
      test_language_lattice_instance;
    Alcotest.test_case "monitor on safety policy" `Quick
      test_monitor_safety_policy;
    Alcotest.test_case "monitor vacuous on liveness" `Quick
      test_monitor_liveness_is_vacuous;
    Alcotest.test_case "shortest bad prefixes" `Quick
      test_monitor_shortest_bad_prefix;
    Alcotest.test_case "gnba roundtrip" `Quick test_gnba_roundtrip;
    Alcotest.test_case "gnba with two sets" `Quick test_gnba_two_sets;
    Alcotest.test_case "gnba empty acceptance" `Quick
      test_gnba_empty_acceptance;
    Alcotest.test_case "simulation preserves language" `Quick
      test_simulation_preserves_language;
    Alcotest.test_case "simulation shrinks liveness part" `Quick
      test_simulation_shrinks_liveness_part;
    QCheck_alcotest.to_alcotest prop_simulation_random;
    QCheck_alcotest.to_alcotest prop_decomposition_random;
    QCheck_alcotest.to_alcotest prop_closure_extensive_idempotent;
    QCheck_alcotest.to_alcotest prop_complement_closed_random;
    QCheck_alcotest.to_alcotest prop_rank_complement_random;
    QCheck_alcotest.to_alcotest prop_lemma3_languages ]
