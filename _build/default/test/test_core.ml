module Lattice = Sl_lattice.Lattice
module Named = Sl_lattice.Named
module Closure = Sl_lattice.Closure
module Theory = Sl_core.Theory
module Finite_check = Sl_core.Finite_check

let check = Alcotest.(check bool)

let report =
  Alcotest.testable
    (fun fmt -> function
      | Ok () -> Format.fprintf fmt "Ok"
      | Error e -> Format.fprintf fmt "Error %s" e)
    ( = )

let ok = Ok ()

(* A reusable instantiation of the generic theory over the 3-bit Boolean
   algebra. *)
module B3 = struct
  let l = Named.boolean 3

  module L = (val Finite_check.as_complemented l)
  module T = Theory.Make (L)
end

let test_safety_liveness_predicates () =
  let module T = B3.T in
  let cl = Closure.apply (Closure.identity B3.l) in
  check "everything closed under identity" true (T.is_safety cl 0b010);
  check "only top live under identity" false (T.is_liveness cl 0b010);
  check "top live" true (T.is_liveness cl 0b111);
  let to_top = Closure.apply (Closure.to_top B3.l) in
  check "bot live under to-top" true (T.is_liveness to_top 0b000);
  check "only top safe under to-top" false (T.is_safety to_top 0b011)

let test_decompose_boolean () =
  let module T = B3.T in
  (* Closure with closed set = up-closure of 0b100 plus top-ish elements:
     use closed elements {0b100, 0b101, 0b110, 0b111}. *)
  let cl =
    Closure.apply (Closure.of_closed_set B3.l [ 0b100; 0b101; 0b110 ])
  in
  List.iter
    (fun a ->
      match T.decompose ~cl2:cl a with
      | None -> Alcotest.fail "boolean algebra always has complements"
      | Some d ->
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "verify a=%d" a)
            []
            (T.verify ~cl1:cl ~cl2:cl d))
    (Lattice.elements B3.l)

let test_lemmas () =
  let module T = B3.T in
  let cl =
    Closure.apply (Closure.of_closed_set B3.l [ 0b110; 0b011 ])
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check "lemma 3" true (T.lemma3_holds cl a b);
          check "lemma 5" true (T.lemma5_holds a b (lnot b land 0b111)))
        (Lattice.elements B3.l))
    (Lattice.elements B3.l);
  (* Lemma 4 with a genuine complement of cl a. *)
  List.iter
    (fun a ->
      let b = lnot (cl a) land 0b111 in
      check "lemma 4" true (T.lemma4_holds ~cl ~a ~b))
    (Lattice.elements B3.l)

let test_theorem2_all_named_modular () =
  (* Theorem 2 must hold on every modular complemented lattice for every
     closure. *)
  List.iter
    (fun (name, l) ->
      if
        Lattice.is_modular l && Lattice.is_complemented l
        && Lattice.size l <= 8
      then
        List.iter
          (fun cl ->
            Alcotest.check report
              (name ^ ": theorem 2")
              ok
              (Finite_check.check_theorem2 l cl))
          (Closure.all l))
    Named.all_small

let test_theorem3_two_closures () =
  let l = Named.boolean 2 in
  let cls = Closure.all l in
  List.iter
    (fun cl1 ->
      List.iter
        (fun cl2 ->
          if Closure.pointwise_leq cl1 cl2 then
            Alcotest.check report "theorem 3" ok
              (Finite_check.check_theorem3 l ~cl1 ~cl2))
        cls)
    cls

let test_theorem5_exhaustive () =
  let l = Named.boolean 2 in
  let cls = Closure.all l in
  List.iter
    (fun cl1 ->
      List.iter
        (fun cl2 ->
          Alcotest.check report "theorem 5" ok
            (Finite_check.check_theorem5 l ~cl1 ~cl2))
        cls)
    cls

let test_theorem6_exhaustive () =
  List.iter
    (fun (name, l) ->
      if Lattice.size l <= 6 then
        List.iter
          (fun cl ->
            Alcotest.check report (name ^ ": theorem 6") ok
              (Finite_check.check_theorem6 l ~cl1:cl ~cl2:cl))
          (Closure.all l))
    [ ("bool2", Named.boolean 2); ("chain4", Named.chain 4);
      ("m3", Named.m3) ]

let test_theorem7_distributive_only () =
  (* Holds on Boolean algebras... *)
  List.iter
    (fun cl ->
      Alcotest.check report "theorem 7 on bool2" ok
        (Finite_check.check_theorem7 (Named.boolean 2) ~cl1:cl ~cl2:cl))
    (Closure.all (Named.boolean 2));
  (* ...and the hypothesis check rejects M3. *)
  (match
     Finite_check.check_theorem7 Named.m3
       ~cl1:(Closure.identity Named.m3)
       ~cl2:(Closure.identity Named.m3)
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "M3 should be rejected as non-distributive")

let test_theorem8 () =
  (* Holds on distributive lattices for every closure... *)
  List.iter
    (fun cl ->
      Alcotest.check report "theorem 8 on bool2" ok
        (Finite_check.check_theorem8 (Named.boolean 2) ~cl1:cl ~cl2:cl))
    (Closure.all (Named.boolean 2));
  (* ...with two distinct closures when ordered... *)
  let l = Named.chain 3 in
  let cls = Closure.all l in
  List.iter
    (fun cl1 ->
      List.iter
        (fun cl2 ->
          if Closure.pointwise_leq cl1 cl2 then
            match Finite_check.check_theorem8 l ~cl1 ~cl2 with
            | Ok () -> ()
            | Error e ->
                (* chains are not complemented: hypothesis rejection is
                   the expected outcome here. *)
                check "hypothesis rejection mentions complement" true
                  (String.length e > 0))
        cls)
    cls;
  (* ...and is rejected on the non-distributive M3. *)
  match
    Finite_check.check_theorem8 Named.m3
      ~cl1:(Closure.identity Named.m3) ~cl2:(Closure.identity Named.m3)
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "M3 should be rejected"

let test_lemma6_figure1 () =
  Alcotest.check report "Figure 1 counterexample" ok
    (Sl_core.Finite_check.lemma6_fig1 ())

let test_fig2_theorem7_failure () =
  Alcotest.check report "Figure 2 counterexample" ok
    (Sl_core.Finite_check.fig2_theorem7_failure ())

let test_modularity_needed () =
  Alcotest.check report "modularity necessity" ok
    (Sl_core.Finite_check.modularity_is_needed ())

let test_check_all_closures_bool2 () =
  Alcotest.(check (list (pair string report)))
    "bool2 passes everything"
    [ ("all", ok) ]
    (Finite_check.check_all_closures (Named.boolean 2))

let test_machine_closure () =
  let module T = B3.T in
  let cl = Closure.apply (Closure.of_closed_set B3.l [ 0b110 ]) in
  check "spec with its closure is machine closed" true
    (T.is_machine_closed ~cl ~spec:0b010 ~safety:(cl 0b010));
  check "weaker safety part is not machine closed" false
    (T.is_machine_closed ~cl ~spec:0b010 ~safety:0b111)

let test_gumm_gap () =
  (* The paper's point against Gumm/topology: lattice closures need not
     distribute over joins. On the 3-atom Boolean algebra the closure with
     closed set {bot, 001, 010, top} sends 011 to top although
     cl 001 v cl 010 = 011. *)
  let l = Named.boolean 3 in
  let module LC = (val Finite_check.as_complemented l) in
  let module T = Theory.Make (LC) in
  let cl = Closure.of_closed_set l [ 0b000; 0b001; 0b010 ] in
  check "some closure is not topological" true
    (T.gumm_join_preservation_violation (Closure.apply cl)
       ~sample:(Lattice.elements l)
    <> None);
  (* Theorem 2 still holds for that non-topological closure. *)
  Alcotest.check report "theorem 2 holds regardless" ok
    (Finite_check.check_theorem2 l cl);
  (* The identity closure by contrast is topological. *)
  check "identity is topological" true
    (T.gumm_join_preservation_violation
       (Closure.apply (Closure.identity l))
       ~sample:(Lattice.elements l)
    = None)

let tests =
  [ Alcotest.test_case "safety/liveness predicates" `Quick
      test_safety_liveness_predicates;
    Alcotest.test_case "decomposition on boolean algebra" `Quick
      test_decompose_boolean;
    Alcotest.test_case "lemmas 3-5" `Quick test_lemmas;
    Alcotest.test_case "theorem 2 (all modular complemented)" `Quick
      test_theorem2_all_named_modular;
    Alcotest.test_case "theorem 3 (two closures)" `Quick
      test_theorem3_two_closures;
    Alcotest.test_case "theorem 5 (impossibility)" `Quick
      test_theorem5_exhaustive;
    Alcotest.test_case "theorem 6 (extremal safety)" `Quick
      test_theorem6_exhaustive;
    Alcotest.test_case "theorem 7 (extremal liveness)" `Quick
      test_theorem7_distributive_only;
    Alcotest.test_case "theorem 8" `Quick test_theorem8;
    Alcotest.test_case "lemma 6 / Figure 1" `Quick test_lemma6_figure1;
    Alcotest.test_case "Figure 2 / Theorem 7 failure" `Quick
      test_fig2_theorem7_failure;
    Alcotest.test_case "modularity necessity" `Quick test_modularity_needed;
    Alcotest.test_case "all closures on bool2" `Quick
      test_check_all_closures_bool2;
    Alcotest.test_case "machine closure" `Quick test_machine_closure;
    Alcotest.test_case "Gumm gap (non-topological closures)" `Quick
      test_gumm_gap ]
