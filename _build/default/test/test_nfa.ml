module Nfa = Sl_nfa.Nfa
module Dfa = Sl_nfa.Dfa

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* NFA over {a=0, b=1} accepting words containing "ab". *)
let contains_ab =
  Nfa.make ~alphabet:2 ~nstates:3 ~starts:[ 0 ]
    ~delta:
      [| [| [ 0; 1 ]; [ 0 ] |] (* 0: loop; guess the a *)
       ; [| []; [ 2 ] |] (* 1: saw a, need b *)
       ; [| [ 2 ]; [ 2 ] |] (* 2: accept sink *)
      |]
    ~accepting:[| false; false; true |]

(* DFA over {a, b} accepting words with an even number of a's. *)
let even_as =
  Dfa.make ~alphabet:2 ~nstates:2 ~start:0
    ~delta:[| [| 1; 0 |]; [| 0; 1 |] |]
    ~accepting:[| true; false |]

let test_nfa_accepts () =
  check "ab" true (Nfa.accepts contains_ab [ 0; 1 ]);
  check "bbabb" true (Nfa.accepts contains_ab [ 1; 1; 0; 1; 1 ]);
  check "ba" false (Nfa.accepts contains_ab [ 1; 0 ]);
  check "empty" false (Nfa.accepts contains_ab []);
  check "aaa" false (Nfa.accepts contains_ab [ 0; 0; 0 ])

let test_dfa_accepts () =
  check "empty (0 a's)" true (Dfa.accepts even_as []);
  check "a" false (Dfa.accepts even_as [ 0 ]);
  check "aba" true (Dfa.accepts even_as [ 0; 1; 0 ])

let all_words alphabet max_len =
  let rec go len =
    if len < 0 then []
    else if len = 0 then [ [] ]
    else
      List.concat_map
        (fun w -> List.init alphabet (fun s -> s :: w))
        (go (len - 1))
      @ go (len - 1)
  in
  List.sort_uniq compare (go max_len)

let agree_on_words ?(max_len = 6) nfa dfa =
  List.for_all
    (fun w -> Nfa.accepts nfa w = Dfa.accepts dfa w)
    (all_words 2 max_len)

let test_determinize () =
  let dfa = Nfa.determinize contains_ab in
  check "language preserved" true (agree_on_words contains_ab dfa);
  (* Subset DFA of this 3-state NFA stays small. *)
  check "bounded" true (dfa.Dfa.nstates <= 8)

let test_complement () =
  let dfa = Nfa.determinize contains_ab in
  let comp = Dfa.complement dfa in
  List.iter
    (fun w ->
      check "complement flips" (not (Dfa.accepts dfa w)) (Dfa.accepts comp w))
    (all_words 2 5)

let test_product () =
  let d1 = Nfa.determinize contains_ab in
  let inter = Dfa.intersect d1 even_as in
  let union = Dfa.union d1 even_as in
  List.iter
    (fun w ->
      check "intersection" (Dfa.accepts d1 w && Dfa.accepts even_as w)
        (Dfa.accepts inter w);
      check "union" (Dfa.accepts d1 w || Dfa.accepts even_as w)
        (Dfa.accepts union w))
    (all_words 2 5)

let test_emptiness_and_witness () =
  check "contains_ab nonempty" false
    (Dfa.is_empty (Nfa.determinize contains_ab));
  Alcotest.(check (option (list int))) "shortest witness" (Some [ 0; 1 ])
    (Dfa.some_accepted_word (Nfa.determinize contains_ab));
  let never = Dfa.make ~alphabet:2 ~nstates:1 ~start:0
      ~delta:[| [| 0; 0 |] |] ~accepting:[| false |] in
  check "empty language" true (Dfa.is_empty never)

let test_equivalence () =
  let d = Nfa.determinize contains_ab in
  check "reflexive" true (Dfa.equivalent d d);
  check "not equal to even_as" false (Dfa.equivalent d even_as);
  check "minimized equals original" true (Dfa.equivalent d (Dfa.minimize d))

let test_subset () =
  let d = Nfa.determinize contains_ab in
  let univ = Dfa.complement (Dfa.make ~alphabet:2 ~nstates:1 ~start:0
      ~delta:[| [| 0; 0 |] |] ~accepting:[| false |]) in
  check "d subset univ" true (Dfa.subset d univ);
  check "univ not subset d" false (Dfa.subset univ d)

let test_minimize () =
  (* A bloated automaton for "even a's": 4 states, two per class. *)
  let bloated =
    Dfa.make ~alphabet:2 ~nstates:4 ~start:0
      ~delta:[| [| 1; 2 |]; [| 2; 3 |]; [| 3; 0 |]; [| 0; 1 |] |]
      ~accepting:[| true; false; true; false |]
  in
  let m = Dfa.minimize bloated in
  check_int "two classes" 2 m.Dfa.nstates;
  check "same language" true (Dfa.equivalent m bloated);
  check "equivalent to even_as" true (Dfa.equivalent m even_as)

let test_prefix_closed () =
  (* Words not containing "ab" form a prefix-closed language. *)
  let no_ab = Dfa.complement (Nfa.determinize contains_ab) in
  check "no_ab prefix closed" true (Dfa.is_prefix_closed no_ab);
  check "contains_ab not prefix closed" false
    (Dfa.is_prefix_closed (Nfa.determinize contains_ab));
  check "even_as not prefix closed" false (Dfa.is_prefix_closed even_as)

let test_nfa_prefix_closure () =
  let pc = Nfa.prefix_closure contains_ab in
  check "closure prefix closed" true (Nfa.is_prefix_closed pc);
  (* Prefix closure contains every prefix of every accepted word. *)
  List.iter
    (fun w ->
      if Nfa.accepts contains_ab w then
        List.iteri
          (fun i _ ->
            let prefix = List.filteri (fun j _ -> j < i) w in
            check "prefix in closure" true (Nfa.accepts pc prefix))
          w)
    (all_words 2 5)

let test_union_nfa () =
  let first_a =
    Nfa.make ~alphabet:2 ~nstates:2 ~starts:[ 0 ]
      ~delta:[| [| [ 1 ]; [] |]; [| [ 1 ]; [ 1 ] |] |]
      ~accepting:[| false; true |]
  in
  let u = Nfa.union contains_ab first_a in
  List.iter
    (fun w ->
      check "union semantics"
        (Nfa.accepts contains_ab w || Nfa.accepts first_a w)
        (Nfa.accepts u w))
    (all_words 2 5)

let test_trim () =
  (* Add junk unreachable and dead states around contains_ab. *)
  let bloated =
    Nfa.make ~alphabet:2 ~nstates:5 ~starts:[ 0 ]
      ~delta:
        [| [| [ 0; 1 ]; [ 0; 3 ] |]; [| []; [ 2 ] |]; [| [ 2 ]; [ 2 ] |];
           [| []; [] |] (* dead *); [| [ 2 ]; [] |] (* unreachable *)
        |]
      ~accepting:[| false; false; true; false; false |]
  in
  let t = Nfa.trim bloated in
  check_int "only useful states" 3 t.Nfa.nstates;
  check "language preserved" true (Nfa.language_equal t bloated)

let test_reverse () =
  let r = Nfa.reverse contains_ab in
  (* Reverse language: words containing "ba" (the mirror of "ab"). *)
  check "ba in reverse" true (Nfa.accepts r [ 1; 0 ]);
  check "ab not in reverse" false (Nfa.accepts r [ 0; 1 ]);
  (* Double reversal restores the language. *)
  check "involution" true
    (Nfa.language_equal contains_ab (Nfa.reverse (Nfa.reverse contains_ab)))

let test_brzozowski () =
  let moore = Nfa.reverse_determinize_minimize contains_ab in
  let brz = Nfa.brzozowski_minimize contains_ab in
  check "same language" true (Dfa.equivalent moore brz);
  Alcotest.(check int) "same (minimal) size" moore.Dfa.nstates
    brz.Dfa.nstates

let prop_brzozowski_equals_moore =
  QCheck.Test.make ~name:"Brzozowski = Moore on random NFAs" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let nstates = 1 + Random.State.int st 5 in
      let delta =
        Array.init nstates (fun _ ->
            Array.init 2 (fun _ ->
                List.filter (fun _ -> Random.State.bool st)
                  (List.init nstates Fun.id)))
      in
      let accepting = Array.init nstates (fun _ -> Random.State.bool st) in
      let nfa =
        Nfa.make ~alphabet:2 ~nstates ~starts:[ 0 ] ~delta ~accepting
      in
      let moore = Nfa.reverse_determinize_minimize nfa in
      let brz = Nfa.brzozowski_minimize nfa in
      Dfa.equivalent moore brz && moore.Dfa.nstates = brz.Dfa.nstates)

let prop_determinize_preserves =
  QCheck.Test.make ~name:"determinize preserves language" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let nstates = 1 + Random.State.int st 5 in
      let delta =
        Array.init nstates (fun _ ->
            Array.init 2 (fun _ ->
                List.filter (fun _ -> Random.State.bool st)
                  (List.init nstates Fun.id)))
      in
      let accepting = Array.init nstates (fun _ -> Random.State.bool st) in
      let nfa =
        Nfa.make ~alphabet:2 ~nstates ~starts:[ 0 ] ~delta ~accepting
      in
      agree_on_words ~max_len:5 nfa (Nfa.determinize nfa))

let prop_minimize_canonical =
  QCheck.Test.make ~name:"minimize yields equivalent minimal DFA" ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let nstates = 1 + Random.State.int st 6 in
      let delta =
        Array.init nstates (fun _ ->
            Array.init 2 (fun _ -> Random.State.int st nstates))
      in
      let accepting = Array.init nstates (fun _ -> Random.State.bool st) in
      let dfa = Dfa.make ~alphabet:2 ~nstates ~start:0 ~delta ~accepting in
      let m = Dfa.minimize dfa in
      Dfa.equivalent dfa m
      && m.Dfa.nstates <= dfa.Dfa.nstates
      && Dfa.equivalent (Dfa.minimize m) m
      && (Dfa.minimize m).Dfa.nstates = m.Dfa.nstates)

let tests =
  [ Alcotest.test_case "nfa acceptance" `Quick test_nfa_accepts;
    Alcotest.test_case "dfa acceptance" `Quick test_dfa_accepts;
    Alcotest.test_case "determinization" `Quick test_determinize;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "products" `Quick test_product;
    Alcotest.test_case "emptiness and witnesses" `Quick
      test_emptiness_and_witness;
    Alcotest.test_case "equivalence" `Quick test_equivalence;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "minimization" `Quick test_minimize;
    Alcotest.test_case "prefix-closedness" `Quick test_prefix_closed;
    Alcotest.test_case "prefix closure" `Quick test_nfa_prefix_closure;
    Alcotest.test_case "nfa union" `Quick test_union_nfa;
    Alcotest.test_case "trim" `Quick test_trim;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "Brzozowski minimization" `Quick test_brzozowski;
    QCheck_alcotest.to_alcotest prop_brzozowski_equals_moore;
    QCheck_alcotest.to_alcotest prop_determinize_preserves;
    QCheck_alcotest.to_alcotest prop_minimize_canonical ]
