module Poset = Sl_order.Poset
module Lattice = Sl_lattice.Lattice
module Named = Sl_lattice.Named
module Closure = Sl_lattice.Closure
module Birkhoff = Sl_lattice.Birkhoff

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_boolean_is_boolean () =
  let b3 = Named.boolean 3 in
  check "lattice laws" true (Lattice.check_lattice_laws b3 = None);
  check "distributive" true (Lattice.is_distributive b3);
  check "complemented" true (Lattice.is_complemented b3);
  check "boolean" true (Lattice.is_boolean b3);
  check "unique complements" true (Lattice.has_unique_complements b3);
  check_int "complement of 0b011" 0b100
    (List.hd (Lattice.complements b3 0b011))

let test_chain_structure () =
  let c4 = Named.chain 4 in
  check "modular" true (Lattice.is_modular c4);
  check "distributive" true (Lattice.is_distributive c4);
  check "not complemented" false (Lattice.is_complemented c4);
  Alcotest.(check (list int)) "uncomplemented middles" [ 1; 2 ]
    (Lattice.uncomplemented c4)

let test_n5_figure1 () =
  let l = Named.n5 in
  check "laws hold" true (Lattice.check_lattice_laws l = None);
  check "not modular" false (Lattice.is_modular l);
  check "complemented" true (Lattice.is_complemented l);
  (* The paper's Figure 1 caption: b ^ (c v a) = b but (b ^ c) v (b ^ a)
     = a, with a <= b. *)
  let a = Named.n5_a and b = Named.n5_b and c = Named.n5_c in
  check "a <= b" true (Lattice.leq l a b);
  check_int "b ^ (c v a)" b (Lattice.meet l b (Lattice.join l c a));
  check_int "(b^c) v (b^a)" a
    (Lattice.join l (Lattice.meet l b c) (Lattice.meet l b a));
  (* Pentagon detector finds exactly this configuration. *)
  (match Lattice.contains_pentagon l with
  | Some (z, a', b', c', o) ->
      check_int "z" Named.n5_bot z;
      check_int "a" a a';
      check_int "b" b b';
      check_int "c" c c';
      check_int "o" Named.n5_top o
  | None -> Alcotest.fail "pentagon not found in N5");
  check "no diamond in N5" true (Lattice.contains_diamond l = None)

let test_m3_figure2 () =
  let l = Named.m3 in
  check "modular" true (Lattice.is_modular l);
  check "not distributive" false (Lattice.is_distributive l);
  check "complemented" true (Lattice.is_complemented l);
  check "complements not unique" false (Lattice.has_unique_complements l);
  (* Paper's Figure 2 caption: s ^ (b v z) = s, (s ^ b) v (s ^ z) = a. *)
  let s = Named.m3_s and b = Named.m3_b and z = Named.m3_z in
  check_int "s ^ (b v z)" s (Lattice.meet l s (Lattice.join l b z));
  check_int "(s^b) v (s^z)" Named.m3_a
    (Lattice.join l (Lattice.meet l s b) (Lattice.meet l s z));
  check "diamond found" true (Lattice.contains_diamond l <> None);
  check "no pentagon" true (Lattice.contains_pentagon l = None)

let test_birkhoff_m3_n5_theorem () =
  (* A lattice is distributive iff it embeds neither N5 nor M3. Check both
     directions over the whole corpus. *)
  List.iter
    (fun (name, l) ->
      let dist = Lattice.is_distributive l in
      let has_forbidden =
        Lattice.contains_pentagon l <> None
        || Lattice.contains_diamond l <> None
      in
      check (name ^ ": M3/N5 theorem") dist (not has_forbidden))
    Named.all_small

let test_dedekind_modularity () =
  (* Modular iff no pentagon. *)
  List.iter
    (fun (name, l) ->
      check
        (name ^ ": Dedekind")
        (Lattice.is_modular l)
        (Lattice.contains_pentagon l = None))
    Named.all_small

let test_divisor_lattice () =
  let l, ds = Named.divisor 12 in
  check "distributive" true (Lattice.is_distributive l);
  check "not boolean (12 not squarefree)" false (Lattice.is_boolean l);
  let l30, _ = Named.divisor 30 in
  check "30 squarefree -> boolean" true (Lattice.is_boolean l30);
  (* gcd/lcm behave as meet/join. *)
  let idx v =
    let rec go i = if ds.(i) = v then i else go (i + 1) in
    go 0
  in
  check_int "gcd(4,6)=2" (idx 2) (Lattice.meet l (idx 4) (idx 6));
  check_int "lcm(4,6)=12" (idx 12) (Lattice.join l (idx 4) (idx 6))

let test_partition_lattice () =
  let p3 = Named.partition 3 in
  check_int "Bell(3)" 5 (Lattice.size p3);
  check "complemented" true (Lattice.is_complemented p3);
  let p4 = Named.partition 4 in
  check_int "Bell(4)" 15 (Lattice.size p4);
  check "part4 not modular" false (Lattice.is_modular p4);
  check "part4 complemented" true (Lattice.is_complemented p4)

let test_product_preserves_laws () =
  let l = Lattice.product Named.m3 (Named.chain 2) in
  check "product of modular is modular" true (Lattice.is_modular l);
  let l2 = Lattice.product Named.n5 (Named.chain 2) in
  check "product with N5 not modular" false (Lattice.is_modular l2)

let test_interval () =
  let b3 = Named.boolean 3 in
  match Lattice.interval b3 0b001 0b111 with
  | None -> Alcotest.fail "interval exists"
  | Some iv ->
      check_int "interval size" 4 (Lattice.size iv);
      check "interval of boolean is boolean" true (Lattice.is_boolean iv)

let test_irreducibles () =
  let b3 = Named.boolean 3 in
  Alcotest.(check (list int)) "join irreducibles = atoms" [ 1; 2; 4 ]
    (Lattice.join_irreducibles b3);
  let c3 = Named.chain 3 in
  Alcotest.(check (list int)) "chain irreducibles" [ 1; 2 ]
    (Lattice.join_irreducibles c3)

let test_sublattice_closure () =
  let b3 = Named.boolean 3 in
  let sub = Lattice.sublattice_closure b3 [ 0b001; 0b010 ] in
  Alcotest.(check (list int)) "generated" [ 0b000; 0b001; 0b010; 0b011 ] sub

(* --- Closure operators --- *)

let test_closure_axioms () =
  let l = Named.boolean 2 in
  check "identity valid" true (Closure.validate l Fun.id = None);
  check "to-top valid" true
    (Closure.validate l (fun _ -> Lattice.top l) = None);
  (* Collapsing everything to bot is not extensive. *)
  (match Closure.validate l (fun _ -> Lattice.bot l) with
  | Some ("extensive", _) -> ()
  | _ -> Alcotest.fail "expected extensivity failure");
  (* A non-monotone map: bot is sent strictly above one atom but not the
     other, so bot <= 0b10 while f bot </= f 0b10. *)
  let f x = if x = 0b00 then 0b01 else x in
  (match Closure.validate l f with
  | Some ("monotone", _) -> ()
  | _ -> Alcotest.fail "expected monotonicity failure")

let test_closure_of_closed_set () =
  let l = Named.boolean 2 in
  let cl = Closure.of_closed_set l [ 0b01 ] in
  check_int "cl bot = atom? no: bot maps to 0b01's meet-closure" 0b01
    (Closure.apply cl 0b00);
  check_int "cl atom2 = top" 0b11 (Closure.apply cl 0b10);
  check "closed elements include top" true
    (List.mem 0b11 (Closure.closed_elements cl))

let test_closure_enumeration () =
  (* On the 2-chain the closure operators are: identity and to-top.
     Closure systems = meet-closed subsets containing top: {1}, {0,1}. *)
  let c2 = Named.chain 2 in
  check_int "closures on chain2" 2 (List.length (Closure.all c2));
  (* On the 3-chain: subsets of {0,1} joined with {2}: {}, {0}, {1}, {0,1}
     all meet-closed -> 4 closures. *)
  let c3 = Named.chain 3 in
  check_int "closures on chain3" 4 (List.length (Closure.all c3));
  (* Every enumerated closure validates. *)
  List.iter
    (fun cl ->
      check "valid" true (Closure.validate c3 (Closure.apply cl) = None))
    (Closure.all c3)

let test_fig1_closure () =
  let cl = Closure.fig1 in
  check_int "cl a = b" Named.n5_b (Closure.apply cl Named.n5_a);
  check_int "cl c = c" Named.n5_c (Closure.apply cl Named.n5_c);
  Alcotest.(check (list int)) "closed = all but a"
    [ Named.n5_bot; Named.n5_b; Named.n5_c; Named.n5_top ]
    (Closure.closed_elements cl)

let test_fig2_candidates () =
  let cls = Closure.fig2_candidates in
  check "at least one" true (cls <> []);
  List.iter
    (fun cl ->
      check_int "maps a to s" Named.m3_s (Closure.apply cl Named.m3_a);
      check "valid" true
        (Closure.validate Named.m3 (Closure.apply cl) = None))
    cls;
  (* Any such closure must coarsen b and z to top (monotonicity forces
     cl b >= s v b = top when b >= a). *)
  List.iter
    (fun cl ->
      check_int "cl b = top" Named.m3_top (Closure.apply cl Named.m3_b);
      check_int "cl z = top" Named.m3_top (Closure.apply cl Named.m3_z))
    cls

let test_pointwise_order () =
  let l = Named.chain 3 in
  let id = Closure.identity l and top = Closure.to_top l in
  check "id <= top" true (Closure.pointwise_leq id top);
  check "top </= id" false (Closure.pointwise_leq top id)

(* --- Galois connections --- *)

module Galois = Sl_lattice.Galois

let test_galois_of_closure () =
  (* Every closure induces a connection onto its closed elements, whose
     induced closure is the original one. *)
  List.iter
    (fun (name, l) ->
      if Lattice.size l <= 6 then
        List.iter
          (fun cl ->
            let c = Galois.of_closure l cl in
            check (name ^ ": genuine connection") true
              (Galois.is_connection c);
            List.iter
              (fun x ->
                check_int
                  (name ^ ": induced closure agrees")
                  (Closure.apply cl x) (Galois.closure_of c x))
              (Lattice.elements l))
          (Closure.all l))
    [ ("chain3", Named.chain 3); ("bool2", Named.boolean 2);
      ("m3", Named.m3) ]

let test_galois_lcl_connection () =
  let c = Galois.lcl_connection ~max_len:2 ~alphabet:2 in
  check "prefix/limit connection valid" true (Galois.is_connection c);
  (* The induced map is a closure on the left powerset. *)
  let l = Lattice.of_poset c.Galois.left in
  check "induced closure valid" true
    (Closure.validate l (Galois.closure_of c) = None);
  (* Words sharing all prefixes get identified: a singleton observation
     closes to itself (its prefix set pins it down). *)
  check_int "singleton closed" 0b0001 (Galois.closure_of c 0b0001);
  (* The kernel on the prefix side is contractive and idempotent. *)
  List.iter
    (fun y ->
      check "kernel contractive" true
        (Poset.leq c.Galois.right (Galois.kernel_of c y) y))
    (Poset.elements c.Galois.right)

let test_right_adjoint_search () =
  (* The identity on a chain is its own adjoint. *)
  let p = Poset.chain 4 in
  (match Galois.right_adjoint_of p p Fun.id with
  | None -> Alcotest.fail "identity has an adjoint"
  | Some g ->
      List.iter (fun x -> check_int "adjoint of id" x (g x))
        (Poset.elements p));
  (* A non-join-preserving map has none: collapse the 2-antichain's
     powerset wrongly. *)
  let b2 = Poset.powerset 2 in
  let f x = if x = 0b11 then 0b11 else 0b00 in
  (* f is monotone but f(01 v 10) = 11 <> f 01 v f 10 = 00; adjoint g
     would need max{x : f x <= 00} to exist; it is {00,01,10}, whose max
     doesn't exist. *)
  check "no adjoint" true (Galois.right_adjoint_of b2 b2 f = None)

(* --- Birkhoff duality --- *)

let test_birkhoff_representation () =
  List.iter
    (fun (name, l) ->
      let expected = Lattice.is_distributive l in
      check (name ^ ": representation iff distributive") expected
        (Birkhoff.check_representation l))
    (List.filter (fun (_, l) -> Lattice.size l <= 16) Named.all_small)

let test_downset_lattice_distributive () =
  let p = Poset.of_covers ~size:4 ~covers:[ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let l, _ = Birkhoff.downset_lattice p in
  check "downset lattice distributive" true (Lattice.is_distributive l)

let tests =
  [ Alcotest.test_case "boolean algebra" `Quick test_boolean_is_boolean;
    Alcotest.test_case "chain structure" `Quick test_chain_structure;
    Alcotest.test_case "N5 / Figure 1" `Quick test_n5_figure1;
    Alcotest.test_case "M3 / Figure 2" `Quick test_m3_figure2;
    Alcotest.test_case "M3/N5 theorem" `Quick test_birkhoff_m3_n5_theorem;
    Alcotest.test_case "Dedekind modularity" `Quick test_dedekind_modularity;
    Alcotest.test_case "divisor lattice" `Quick test_divisor_lattice;
    Alcotest.test_case "partition lattice" `Quick test_partition_lattice;
    Alcotest.test_case "products" `Quick test_product_preserves_laws;
    Alcotest.test_case "intervals" `Quick test_interval;
    Alcotest.test_case "irreducibles" `Quick test_irreducibles;
    Alcotest.test_case "sublattice closure" `Quick test_sublattice_closure;
    Alcotest.test_case "closure axioms" `Quick test_closure_axioms;
    Alcotest.test_case "closure from closed set" `Quick
      test_closure_of_closed_set;
    Alcotest.test_case "closure enumeration" `Quick test_closure_enumeration;
    Alcotest.test_case "Figure 1 closure" `Quick test_fig1_closure;
    Alcotest.test_case "Figure 2 closures" `Quick test_fig2_candidates;
    Alcotest.test_case "pointwise order" `Quick test_pointwise_order;
    Alcotest.test_case "Galois from closures" `Quick
      test_galois_of_closure;
    Alcotest.test_case "Galois lcl connection" `Quick
      test_galois_lcl_connection;
    Alcotest.test_case "right adjoint search" `Quick
      test_right_adjoint_search;
    Alcotest.test_case "Birkhoff representation" `Quick
      test_birkhoff_representation;
    Alcotest.test_case "downset lattice" `Quick
      test_downset_lattice_distributive ]
