module Rabin = Sl_rabin.Rabin
module Rclosure = Sl_rabin.Closure
module Rdecompose = Sl_rabin.Decompose
module Rpatterns = Sl_rabin.Patterns
module Rtree = Sl_tree.Rtree
module Ftree = Sl_tree.Ftree
module Ptree = Sl_tree.Ptree
module Ctl = Sl_ctl.Ctl
module Ctlstar = Sl_ctl.Ctlstar

let check = Alcotest.(check bool)

let sample = Rpatterns.sample_trees
let prop_of_label l = if l = 0 then "a" else "b"
let to_kripke t = Rtree.to_kripke t ~prop_of_label

(* CTL/CTL* oracles on the presentation graph. *)
let oracle_af_b t = Ctl.holds (to_kripke t) (Ctl.parse_exn "AF b")
let oracle_ag_a t = Ctl.holds (to_kripke t) (Ctl.parse_exn "AG a")
let oracle_ef_b t = Ctl.holds (to_kripke t) (Ctl.parse_exn "EF b")
let oracle_eg_a t = Ctl.holds (to_kripke t) (Ctl.parse_exn "EG a")
let oracle_q3a t = Ctl.holds (to_kripke t) (Ctl.parse_exn "a & AF b")

let test_membership_vs_ctl () =
  List.iter
    (fun (automaton, oracle, name) ->
      List.iter
        (fun t ->
          check
            (Printf.sprintf "%s on tree" name)
            (oracle t)
            (Rabin.accepts automaton t))
        sample)
    [ (Rpatterns.af_b, oracle_af_b, "AF b");
      (Rpatterns.ag_a, oracle_ag_a, "AG a");
      (Rpatterns.ef_b, oracle_ef_b, "EF b");
      (Rpatterns.eg_a, oracle_eg_a, "EG a");
      (Rpatterns.q3a, oracle_q3a, "q3a") ]

let test_emptiness () =
  List.iter
    (fun (name, b) ->
      check (name ^ " nonempty") false (Rabin.is_empty b))
    Rpatterns.all;
  (* An automaton that can never read b and must read b: empty. *)
  let contradictory =
    Rabin.make ~alphabet:2 ~k:2 ~nstates:1 ~start:0
      ~delta:[| [| []; [] |] |]
      ~pairs:(Rabin.buchi_condition ~nstates:1 ~accepting:[ 0 ])
  in
  check "no transitions = empty" true (Rabin.is_empty contradictory);
  (* Accepting states unreachable through cycles: waiting state only. *)
  let no_accept =
    Rabin.make ~alphabet:2 ~k:2 ~nstates:1 ~start:0
      ~delta:[| [| [ [| 0; 0 |] ]; [ [| 0; 0 |] ] |] |]
      ~pairs:(Rabin.buchi_condition ~nstates:1 ~accepting:[])
  in
  check "no accepting = empty" true (Rabin.is_empty no_accept)

let test_nonempty_witness () =
  (* Every nonempty pattern yields a witness tree that it accepts, and
     the witness satisfies the property's defining CTL/CTL* oracle. *)
  List.iter
    (fun (name, b) ->
      match Rabin.nonempty_witness b with
      | None -> Alcotest.failf "%s should have a witness" name
      | Some t ->
          check (name ^ ": witness accepted") true (Rabin.accepts b t))
    Rpatterns.all;
  (* The AG a witness is the constant-a tree (semantically). *)
  (match Rabin.nonempty_witness Rpatterns.ag_a with
  | Some t -> check "AG a witness all-a" true (oracle_ag_a t)
  | None -> Alcotest.fail "AG a nonempty");
  (* No witness for an empty automaton. *)
  let empty =
    Rabin.make ~alphabet:2 ~k:2 ~nstates:1 ~start:0
      ~delta:[| [| []; [] |] |]
      ~pairs:(Rabin.buchi_condition ~nstates:1 ~accepting:[ 0 ])
  in
  check "empty has no witness" true (Rabin.nonempty_witness empty = None)

let test_extends () =
  let leaf_a = Ftree.singleton 0 and leaf_b = Ftree.singleton 1 in
  let a_aa = Ftree.of_children 0 [ leaf_a; leaf_a ] in
  let a_ab = Ftree.of_children 0 [ leaf_a; leaf_b ] in
  check "AG a extends all-a prefix" true (Rabin.extends Rpatterns.ag_a a_aa);
  check "AG a rejects b" false (Rabin.extends Rpatterns.ag_a a_ab);
  check "AF b extends anything" true (Rabin.extends Rpatterns.af_b a_aa);
  check "q3a needs a root" false (Rabin.extends Rpatterns.q3a leaf_b);
  check "q3a extends a root" true (Rabin.extends Rpatterns.q3a leaf_a);
  check "EG a extends prefix with a path" true
    (Rabin.extends Rpatterns.eg_a a_ab);
  check "EG a rejects b root" false (Rabin.extends Rpatterns.eg_a leaf_b)

let test_rfcl_q3a_is_q1 () =
  (* The branching-time analogue of "the closure of p3 is p1": rfcl of the
     q3a automaton accepts exactly the trees with an a-labeled root. *)
  let closed = Rclosure.rfcl Rpatterns.q3a in
  check "closure shaped" true (Rclosure.is_closure_shaped closed);
  List.iter
    (fun t ->
      check "rfcl q3a = root is a"
        (t.Rtree.label.(t.Rtree.root) = 0)
        (Rabin.accepts closed t))
    sample

let test_rfcl_af_b_universal () =
  let closed = Rclosure.rfcl Rpatterns.af_b in
  List.iter
    (fun t -> check "rfcl (AF b) accepts everything" true
        (Rabin.accepts closed t))
    sample

let test_rfcl_safety_fixpoint () =
  (* AG a is already closed: rfcl preserves its language. *)
  let closed = Rclosure.rfcl Rpatterns.ag_a in
  List.iter
    (fun t ->
      check "rfcl (AG a) = AG a"
        (Rabin.accepts Rpatterns.ag_a t)
        (Rabin.accepts closed t))
    sample

let test_general_rabin_condition () =
  (* A genuine Rabin pair: "every path sees b only finitely often".
     States record the letter just read; pair (green = just-read-a,
     red = just-read-b). Deterministic, so the strategy enumeration is
     trivial; the oracle is the CTL* limit modality AFG a. *)
  let delta =
    [| [| [ [| 0; 0 |] ]; [ [| 1; 1 |] ] |];
       [| [ [| 0; 0 |] ]; [ [| 1; 1 |] ] |] |]
  in
  let pairs = [ ([| true; false |], [| false; true |]) ] in
  let fin_b =
    Rabin.make ~alphabet:2 ~k:2 ~nstates:2 ~start:0 ~delta ~pairs
  in
  check "not Büchi shaped" false (Rabin.is_buchi_shaped fin_b);
  List.iter
    (fun t ->
      let k = to_kripke t in
      let expected =
        (Ctlstar.a_fg k ~pred:(fun q -> Sl_kripke.Kripke.holds k q "a")).(
          t.Rtree.root)
      in
      check "AFG a via Rabin pair" expected (Rabin.accepts fin_b t))
    sample

let test_union () =
  let u = Rabin.union Rpatterns.ag_a Rpatterns.ef_b in
  List.iter
    (fun t ->
      check "union semantics"
        (Rabin.accepts Rpatterns.ag_a t || Rabin.accepts Rpatterns.ef_b t)
        (Rabin.accepts u t))
    sample

let test_safe_live_classification () =
  let safe b = Rdecompose.is_safe_language ~trees:sample b in
  let live b = Rdecompose.is_live_language ~max_depth:2 b in
  check "AG a safe" true (safe Rpatterns.ag_a);
  check "AG a not live" false (live Rpatterns.ag_a);
  check "AF b live" true (live Rpatterns.af_b);
  check "AF b not safe" false (safe Rpatterns.af_b);
  check "EF b live" true (live Rpatterns.ef_b);
  check "EF b not safe" false (safe Rpatterns.ef_b);
  (* König: over finitely-branching trees EG a is fcl-closed. *)
  check "EG a safe" true (safe Rpatterns.eg_a);
  check "q3a not safe" false (safe Rpatterns.q3a);
  check "q3a not live" false (live Rpatterns.q3a)

let test_theorem9_decompositions () =
  List.iter
    (fun (name, b) ->
      let d = Rdecompose.decompose b in
      Alcotest.(check (list (pair string string)))
        (name ^ " decomposition verifies")
        []
        (Rdecompose.verify_sampled ~max_depth:2 ~trees:sample d))
    Rpatterns.all

let test_decomposition_pieces () =
  (* The safety part of q3a is live-free and safe; the liveness predicate
     is weaker than the original language. *)
  let d = Rdecompose.decompose Rpatterns.q3a in
  check "safe part safe" true
    (Rdecompose.is_safe_language ~trees:sample d.Rdecompose.safe);
  List.iter
    (fun t ->
      if Rabin.accepts Rpatterns.q3a t then
        check "original inside liveness part" true (d.Rdecompose.live_mem t))
    sample

let test_truncation_unfold_consistency () =
  (* extends on the unfolded prefix agrees with extends on the
     Ptree-truncation unfolding — ties the Rabin oracle to the sl_tree
     machinery. *)
  List.iter
    (fun t ->
      List.iter
        (fun d ->
          let via_rtree = Rtree.unfold t ~depth:d in
          let via_ptree =
            Ptree.unfold (Ptree.truncation (Ptree.of_rtree t) ~depth:d)
              ~depth:(d + 2)
          in
          check "same prefix" true (Ftree.equal via_rtree via_ptree))
        [ 0; 1; 2 ])
    (List.filteri (fun i _ -> i < 10) sample)

let tests =
  [ Alcotest.test_case "membership vs CTL oracles" `Slow
      test_membership_vs_ctl;
    Alcotest.test_case "emptiness" `Quick test_emptiness;
    Alcotest.test_case "nonempty witnesses" `Quick test_nonempty_witness;
    Alcotest.test_case "prefix extendability" `Quick test_extends;
    Alcotest.test_case "rfcl q3a = q1" `Quick test_rfcl_q3a_is_q1;
    Alcotest.test_case "rfcl AF b universal" `Quick
      test_rfcl_af_b_universal;
    Alcotest.test_case "rfcl fixes safety" `Quick
      test_rfcl_safety_fixpoint;
    Alcotest.test_case "general Rabin pair" `Slow
      test_general_rabin_condition;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "safe/live classification" `Quick
      test_safe_live_classification;
    Alcotest.test_case "Theorem 9 decompositions" `Slow
      test_theorem9_decompositions;
    Alcotest.test_case "decomposition pieces" `Quick
      test_decomposition_pieces;
    Alcotest.test_case "truncation consistency" `Quick
      test_truncation_unfold_consistency ]
