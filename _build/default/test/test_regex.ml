module Regex = Sl_regex.Regex
module Omega = Sl_regex.Omega
module Nfa = Sl_nfa.Nfa
module Buchi = Sl_buchi.Buchi
module Lasso = Sl_word.Lasso

let check = Alcotest.(check bool)

(* Naive denotational matcher: the independent oracle. *)
let rec denotes r word =
  match (r : Regex.t) with
  | Empty -> false
  | Eps -> word = []
  | Sym s -> word = [ s ]
  | Alt (a, b) -> denotes a word || denotes b word
  | Seq (a, b) ->
      let n = List.length word in
      List.exists
        (fun k ->
          denotes a (List.filteri (fun i _ -> i < k) word)
          && denotes b (List.filteri (fun i _ -> i >= k) word))
        (List.init (n + 1) Fun.id)
  | Star a ->
      word = []
      || (* Split off a nonempty a-prefix. *)
      List.exists
        (fun k ->
          denotes a (List.filteri (fun i _ -> i < k) word)
          && denotes r (List.filteri (fun i _ -> i >= k) word))
        (List.init (List.length word) (fun i -> i + 1))

let all_words alphabet max_len =
  let rec go len =
    if len = 0 then [ [] ]
    else
      List.concat_map
        (fun w -> List.init alphabet (fun s -> s :: w))
        (go (len - 1))
  in
  List.concat_map go (List.init (max_len + 1) Fun.id)

let corpus =
  [ "_0"; "_1"; "a"; "ab"; "a|b"; "(a|b)*"; "a*b*"; "(ab)*"; "aa*b";
    "(a|b)(a|b)"; "a(ba)*"; "(a|_1)b"; "(a*)*"; "a|_0"; "_0a" ]

let test_parser_roundtrip () =
  List.iter
    (fun s ->
      match Regex.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok r -> (
          match Regex.parse (Regex.to_string r) with
          | Ok r' when r = r' -> ()
          | Ok r' ->
              (* Round trip may reassociate; require language equality. *)
              List.iter
                (fun w ->
                  check ("roundtrip " ^ s) (denotes r w) (denotes r' w))
                (all_words 2 4)
          | Error e -> Alcotest.failf "reparse: %s" e))
    corpus;
  check "reject" true (Result.is_error (Regex.parse "((a)"));
  check "reject op" true (Result.is_error (Regex.parse "*a"))

let test_nfa_matches_denotation () =
  List.iter
    (fun s ->
      let r = Regex.parse_exn s in
      List.iter
        (fun w ->
          check
            (Printf.sprintf "%s on %s" s
               (String.concat "" (List.map string_of_int w)))
            (denotes r w)
            (Regex.matches ~alphabet:2 r w))
        (all_words 2 5))
    corpus

let test_eps_handling () =
  let r = Regex.parse_exn "(a|_1)b*" in
  check "accepts eps" true (Regex.accepts_eps r);
  let stripped = Regex.strip_eps r in
  check "strip drops eps" false (Regex.accepts_eps stripped);
  List.iter
    (fun w ->
      if w <> [] then
        check "strip keeps nonempty" (denotes r w) (denotes stripped w))
    (all_words 2 4)

let prop_random_regexes =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 1 then
            oneofl [ Regex.Empty; Regex.Eps; Regex.Sym 0; Regex.Sym 1 ]
          else
            let sub = self (n / 2) in
            oneof
              [ map2 (fun a b -> Regex.Alt (a, b)) sub sub;
                map2 (fun a b -> Regex.Seq (a, b)) sub sub;
                map (fun a -> Regex.Star a) sub ]))
  in
  QCheck.Test.make ~name:"random regex: NFA = denotation" ~count:120
    (QCheck.make ~print:Regex.to_string gen)
    (fun r ->
      List.for_all
        (fun w -> denotes r w = Regex.matches ~alphabet:2 r w)
        (all_words 2 4))

(* --- Omega --- *)

let test_omega_parser () =
  List.iter
    (fun s ->
      match Omega.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok o -> (
          match Omega.parse (Omega.to_string o) with
          | Ok o' when List.length o = List.length o' -> ()
          | Ok _ -> Alcotest.failf "roundtrip changed arity for %S" s
          | Error e -> Alcotest.failf "reparse: %s" e))
    [ "(a)^w"; "a(b)^w"; "(a|b)*(b)^w + a(a)^w"; "ab(ab)^w" ];
  check "reject missing omega" true (Result.is_error (Omega.parse "ab"))

let test_omega_simple_languages () =
  let lassos = Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:3 in
  let cases =
    [ (* (a)^w accepts exactly a^ω *)
      ("(a)^w", fun w -> Lasso.equal w (Lasso.constant 0));
      (* b(a)^w *)
      ("b(a)^w",
       fun w -> Lasso.equal w (Lasso.make ~prefix:[ 1 ] ~cycle:[ 0 ]));
      (* (ab)^w *)
      ("(ab)^w",
       fun w -> Lasso.equal w (Lasso.make ~prefix:[] ~cycle:[ 0; 1 ]));
      (* (a|b)*(b)^w: finitely many a's *)
      ("(a|b)*(b)^w",
       fun w ->
         match Lasso.count_letter w 0 with
         | `Finitely _ -> true
         | `Infinitely -> false) ]
  in
  List.iter
    (fun (src, oracle) ->
      let o = Omega.parse_exn src in
      List.iter
        (fun w ->
          check
            (Printf.sprintf "%s on %s" src (Lasso.to_string w))
            (oracle w)
            (Omega.accepts_lasso ~alphabet:2 o w))
        lassos)
    cases

let test_omega_rem_examples () =
  (* The ω-regex presentations of p0-p6 define the same languages as the
     hand-built automata (and hence as the LTL translations, which are
     tested against those elsewhere). *)
  List.iter2
    (fun (name, o) (name', _, hand_built) ->
      assert (name = name');
      check
        (name ^ " regex = automaton")
        true
        (Sl_buchi.Lang.sampled_equal ~max_prefix:3 ~max_cycle:3
           (Omega.to_buchi ~alphabet:2 o)
           hand_built))
    Omega.rem_examples Sl_buchi.Patterns.rem_examples

let test_omega_classification () =
  (* Classification through the regex presentation agrees with the
     table. *)
  let classify o =
    Sl_buchi.Decompose.classify (Omega.to_buchi ~alphabet:2 o)
  in
  Alcotest.(check string) "p4 regex is liveness" "liveness"
    (Sl_buchi.Decompose.classification_to_string
       (classify (List.assoc "p4" Omega.rem_examples)));
  Alcotest.(check string) "p1 regex is safety" "safety"
    (Sl_buchi.Decompose.classification_to_string
       (classify (List.assoc "p1" Omega.rem_examples)))

let tests =
  [ Alcotest.test_case "regex parser" `Quick test_parser_roundtrip;
    Alcotest.test_case "NFA vs denotation" `Slow
      test_nfa_matches_denotation;
    Alcotest.test_case "epsilon handling" `Quick test_eps_handling;
    QCheck_alcotest.to_alcotest prop_random_regexes;
    Alcotest.test_case "omega parser" `Quick test_omega_parser;
    Alcotest.test_case "omega simple languages" `Quick
      test_omega_simple_languages;
    Alcotest.test_case "omega Rem presentations" `Quick
      test_omega_rem_examples;
    Alcotest.test_case "omega classification" `Quick
      test_omega_classification ]
