module Formula = Sl_ltl.Formula
module Semantics = Sl_ltl.Semantics
module Translate = Sl_ltl.Translate
module Examples = Sl_ltl.Examples
module Buchi = Sl_buchi.Buchi
module Decompose = Sl_buchi.Decompose
module Lasso = Sl_word.Lasso

let check = Alcotest.(check bool)

let formula =
  Alcotest.testable (fun fmt f -> Format.pp_print_string fmt
      (Formula.to_string f)) Formula.equal

let test_parser_roundtrip () =
  let cases =
    [ "a"; "!a"; "a & F !a"; "F G !a"; "G F a"; "true"; "false";
      "a U b"; "a R b"; "X a"; "a -> b -> c"; "a | b & c";
      "(a | b) & c"; "G (req -> F grant)"; "!X !a"; "F (a & X b)" ]
  in
  List.iter
    (fun s ->
      match Formula.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok f -> (
          (* Printing then reparsing is the identity. *)
          match Formula.parse (Formula.to_string f) with
          | Error e -> Alcotest.failf "reparse %S: %s" (Formula.to_string f) e
          | Ok f' -> Alcotest.check formula ("roundtrip " ^ s) f f'))
    cases

let test_parser_precedence () =
  Alcotest.check formula "-> right assoc"
    Formula.(Implies (Prop "a", Implies (Prop "b", Prop "c")))
    (Formula.parse_exn "a -> b -> c");
  Alcotest.check formula "& binds tighter than |"
    Formula.(Or (Prop "a", And (Prop "b", Prop "c")))
    (Formula.parse_exn "a | b & c");
  Alcotest.check formula "U binds tighter than &"
    Formula.(And (Prop "a", Until (Prop "b", Prop "c")))
    (Formula.parse_exn "a & b U c");
  Alcotest.check formula "prefix chain"
    Formula.(Not (Next (Not (Prop "a"))))
    (Formula.parse_exn "!X !a")

let test_parser_errors () =
  List.iter
    (fun s ->
      match Formula.parse s with
      | Ok f -> Alcotest.failf "expected error for %S, got %s" s
          (Formula.to_string f)
      | Error _ -> ())
    [ ""; "a &"; "(a"; "a)"; "a b"; "-"; "U a" ]

let test_core_translation () =
  (* F a = true U a; G a = !(true U !a); derived operators reduce. *)
  let c1 = Formula.to_core (Formula.parse_exn "F a") in
  let c2 = Formula.to_core Formula.(Until (True, Prop "a")) in
  check "F reduces to U" true (Formula.core_equal c1 c2);
  (* Double negation collapses. *)
  let c3 = Formula.to_core (Formula.parse_exn "!!a") in
  check "double negation" true
    (Formula.core_equal c3 (Formula.to_core (Formula.parse_exn "a")))

let test_propositions_size () =
  let f = Formula.parse_exn "G (req -> F grant) & X req" in
  Alcotest.(check (list string)) "props" [ "grant"; "req" ]
    (Formula.propositions f);
  check "size positive" true (Formula.size f > 5);
  check "subformulas include self" true
    (List.mem f (Formula.subformulas f))

(* --- Semantics --- *)

let v = Examples.valuation
let lassos = Lasso.enumerate ~alphabet:2 ~max_prefix:3 ~max_cycle:3

let test_semantics_oracles () =
  (* Check the fixpoint evaluator against hand-derived facts. *)
  let ab = Lasso.make ~prefix:[] ~cycle:[ 0; 1 ] in
  let a_then_b = Lasso.make ~prefix:[ 0 ] ~cycle:[ 1 ] in
  let all_a = Lasso.constant 0 in
  let all_b = Lasso.constant 1 in
  check "a on (ab)^w" true (Semantics.eval v Examples.p1 ab);
  check "GF a on (ab)^w" true (Semantics.eval v Examples.p5 ab);
  check "FG !a on (ab)^w" false (Semantics.eval v Examples.p4 ab);
  check "FG !a on a b^w" true (Semantics.eval v Examples.p4 a_then_b);
  check "a & F !a on a b^w" true (Semantics.eval v Examples.p3 a_then_b);
  check "a & F !a on a^w" false (Semantics.eval v Examples.p3 all_a);
  check "GF a on b^w" false (Semantics.eval v Examples.p5 all_b);
  check "X a on (ab)^w" false
    (Semantics.eval v (Formula.parse_exn "X a") ab);
  check "X a at 1" true
    (Semantics.eval_at v (Formula.parse_exn "X a") ab 1);
  check "a U b... on (ab)^w" true
    (Semantics.eval v (Formula.parse_exn "a U !a") ab);
  check "a R b degenerate" true
    (Semantics.eval v (Formula.parse_exn "false R true") ab)

let test_semantics_duality () =
  (* !F!f = Gf, !(f U g) = !f R !g, checked pointwise on all lassos. *)
  let fa = Formula.parse_exn "a" and fb = Formula.parse_exn "X a" in
  List.iter
    (fun w ->
      check "G = !F!" (Semantics.eval v (Formula.Always fa) w)
        (Semantics.eval v (Formula.Not (Formula.Eventually (Formula.Not fa))) w);
      check "R dual of U"
        (Semantics.eval v (Formula.Release (fa, fb)) w)
        (Semantics.eval v
           (Formula.Not (Formula.Until (Formula.Not fa, Formula.Not fb))) w);
      check "expansion law U"
        (Semantics.eval v (Formula.Until (fa, fb)) w)
        (Semantics.eval v
           (Formula.Or
              (fb, Formula.And (fa, Formula.Next (Formula.Until (fa, fb)))))
           w))
    lassos

(* --- Translation --- *)

let corpus =
  [ "true"; "false"; "a"; "!a"; "a & F !a"; "F G !a"; "G F a";
    "X a"; "X X a"; "a U !a"; "!a U a"; "a R !a"; "G a"; "F a";
    "G F a -> F G !a"; "(G F a) & (F G !a)"; "F (a & X !a)";
    "G (a -> X !a)"; "a U (a & X !a)" ]

let test_translation_agrees_with_semantics () =
  List.iter
    (fun s ->
      let f = Formula.parse_exn s in
      let b = Translate.translate ~alphabet:2 ~valuation:v f in
      List.iter
        (fun w ->
          check
            (Printf.sprintf "%s on %s" s (Lasso.to_string w))
            (Semantics.eval v f w)
            (Buchi.accepts_lasso b w))
        lassos)
    corpus

let test_translation_matches_pattern_automata () =
  (* The hand-built Rem automata and the translated formulas define the
     same languages. *)
  List.iter2
    (fun (name, f) (name', _, hand_built) ->
      assert (name = name');
      check
        (name ^ " translation = hand-built")
        true
        (Sl_buchi.Lang.sampled_equal ~max_prefix:3 ~max_cycle:3
           (Examples.automaton f) hand_built))
    Examples.all Sl_buchi.Patterns.rem_examples

let test_rem_table () =
  let rows = Examples.table () in
  let find name = List.find (fun r -> r.Examples.name = name) rows in
  let cls name = (find name).Examples.classification in
  Alcotest.(check string) "p0" "safety"
    (Decompose.classification_to_string (cls "p0"));
  Alcotest.(check string) "p1" "safety"
    (Decompose.classification_to_string (cls "p1"));
  Alcotest.(check string) "p2" "safety"
    (Decompose.classification_to_string (cls "p2"));
  Alcotest.(check string) "p3" "neither"
    (Decompose.classification_to_string (cls "p3"));
  Alcotest.(check string) "p4" "liveness"
    (Decompose.classification_to_string (cls "p4"));
  Alcotest.(check string) "p5" "liveness"
    (Decompose.classification_to_string (cls "p5"));
  Alcotest.(check string) "p6" "both (Sigma^omega)"
    (Decompose.classification_to_string (cls "p6"));
  (* The closure column: closure of p3 is p1; closures of p4, p5 are p6;
     closed properties are their own closure. *)
  Alcotest.(check (option string)) "closure of p3" (Some "p1")
    (find "p3").Examples.closure_of;
  Alcotest.(check (option string)) "closure of p4" (Some "p6")
    (find "p4").Examples.closure_of;
  Alcotest.(check (option string)) "closure of p5" (Some "p6")
    (find "p5").Examples.closure_of;
  Alcotest.(check (option string)) "closure of p1" (Some "p1")
    (find "p1").Examples.closure_of

let test_request_response_formula () =
  let f = Formula.parse_exn "G (req -> F grant)" in
  let v = Semantics.subset_valuation [ "req"; "grant" ] in
  let b = Translate.translate ~alphabet:4 ~valuation:v f in
  check "same language as hand-built" true
    (Sl_buchi.Lang.sampled_equal ~max_prefix:2 ~max_cycle:2 b
       Sl_buchi.Patterns.request_response);
  let nb =
    Translate.translate ~alphabet:4 ~valuation:v
      (Formula.Not f)
  in
  Alcotest.(check string) "classification" "liveness"
    (Decompose.classification_to_string
       (Decompose.classify_via_negation b ~negation:nb))

(* --- Syntactic fragments --- *)

module Syntactic = Sl_ltl.Syntactic

let test_nnf_semantics_preserved () =
  List.iter
    (fun s ->
      let f = Formula.parse_exn s in
      let f' = Syntactic.of_nnf (Syntactic.nnf f) in
      List.iter
        (fun w ->
          check ("nnf " ^ s) (Semantics.eval v f w) (Semantics.eval v f' w))
        lassos)
    corpus

let test_syntactic_soundness () =
  (* Syntactically safe implies semantically safe (or both). *)
  List.iter
    (fun s ->
      let f = Formula.parse_exn s in
      if Syntactic.is_syntactically_safe f then begin
        match Examples.classify f with
        | Sl_buchi.Decompose.Safety | Sl_buchi.Decompose.Both -> ()
        | c ->
            Alcotest.failf "%s syntactically safe but %s" s
              (Decompose.classification_to_string c)
      end;
      if Syntactic.is_syntactically_cosafe f then begin
        (* The negation of a co-safe formula is safe. *)
        match Examples.classify (Formula.Not f) with
        | Sl_buchi.Decompose.Safety | Sl_buchi.Decompose.Both -> ()
        | c ->
            Alcotest.failf "!(%s) should be safe but is %s" s
              (Decompose.classification_to_string c)
      end)
    corpus

let test_syntactic_fragment_membership () =
  let safe = Syntactic.is_syntactically_safe in
  let cosafe = Syntactic.is_syntactically_cosafe in
  let f = Formula.parse_exn in
  check "G a safe" true (safe (f "G a"));
  check "a R b safe" true (safe (f "a R b"));
  check "X X a safe (and cosafe)" true
    (safe (f "X X a") && cosafe (f "X X a"));
  check "F a not safe" false (safe (f "F a"));
  check "F a cosafe" true (cosafe (f "F a"));
  check "G F a neither fragment" false
    (safe (f "G F a") || cosafe (f "G F a"));
  (* Incompleteness: F false is semantically safe (it is the empty
     property) but not syntactically safe. *)
  check "F false outside fragment" false (safe (f "F false"));
  Alcotest.(check string) "F false semantically safe" "safety"
    (Decompose.classification_to_string (Examples.classify (f "F false")))

(* --- Automata-theoretic model checking --- *)

module Modelcheck = Sl_ltl.Modelcheck
module Kripke = Sl_kripke.Kripke

let ap_v = Semantics.subset_valuation [ "req"; "grant" ]

let test_modelcheck_token_ring () =
  let k = Kripke.token_ring 3 in
  let v3 = Semantics.subset_valuation [ "tok0"; "tok1"; "tok2" ] in
  let holds f =
    Modelcheck.check k ~alphabet:8 ~valuation:v3 (Formula.parse_exn f)
  in
  check "GF tok0" true (holds "G F tok0" = Modelcheck.Holds);
  check "G !(tok0 & tok1)" true
    (holds "G !(tok0 & tok1)" = Modelcheck.Holds);
  (match holds "F G tok0" with
  | Modelcheck.Fails w ->
      (* The counterexample must be a run of the ring violating FG tok0:
         check it semantically. *)
      check "counterexample violates" false
        (Semantics.eval v3 (Formula.parse_exn "F G tok0") w)
  | Modelcheck.Holds -> Alcotest.fail "FG tok0 should fail")

let test_modelcheck_agreement_with_ctl_shape () =
  (* On the mutex structure: safety holds, response holds (the built-in
     scheduler forces progress), and AF c1 fails. *)
  let k = Kripke.mutex () in
  let props = Array.to_list k.Kripke.ap in
  let vm = Semantics.subset_valuation props in
  let alphabet = 1 lsl List.length props in
  let holds f =
    Modelcheck.check k ~alphabet ~valuation:vm (Formula.parse_exn f)
    = Modelcheck.Holds
  in
  check "G !(c1 & c2)" true (holds "G !(c1 & c2)");
  check "G (t1 -> F c1)" true (holds "G (t1 -> F c1)");
  check "F c1 fails (idling run)" false (holds "F c1")

let test_modelcheck_split () =
  let k = Kripke.token_ring 3 in
  let v3 = Semantics.subset_valuation [ "tok0"; "tok1"; "tok2" ] in
  let split f =
    Modelcheck.check_split k ~alphabet:8 ~valuation:v3 (Formula.parse_exn f)
  in
  (* GF tok0 holds: both parts hold. *)
  let r = split "G F tok0" in
  check "liveness part holds" true
    (r.Modelcheck.liveness_verdict = Modelcheck.Holds);
  check "safety part holds" true
    (r.Modelcheck.safety_verdict = Modelcheck.Holds);
  (* G tok0 fails, and it must fail on the SAFETY side (pure safety). *)
  let r2 = split "G tok0" in
  check "safety side catches G tok0" true
    (match r2.Modelcheck.safety_verdict with
    | Modelcheck.Fails _ -> true
    | Modelcheck.Holds -> false);
  (* F G tok0 fails, and only on the LIVENESS side: its safety part is
     universal. *)
  let r3 = split "F G tok0" in
  check "safety side of FG tok0 holds" true
    (r3.Modelcheck.safety_verdict = Modelcheck.Holds);
  check "liveness side of FG tok0 fails" true
    (match r3.Modelcheck.liveness_verdict with
    | Modelcheck.Fails _ -> true
    | Modelcheck.Holds -> false)

let test_split_agrees_with_check () =
  let k = Kripke.mutex () in
  let props = Array.to_list k.Kripke.ap in
  let vm = Semantics.subset_valuation props in
  let alphabet = 1 lsl List.length props in
  List.iter
    (fun s ->
      let f = Formula.parse_exn s in
      let whole = Modelcheck.check k ~alphabet ~valuation:vm f in
      let split = Modelcheck.check_split k ~alphabet ~valuation:vm f in
      let both_hold =
        split.Modelcheck.safety_verdict = Modelcheck.Holds
        && split.Modelcheck.liveness_verdict = Modelcheck.Holds
      in
      check ("split = whole for " ^ s) (whole = Modelcheck.Holds) both_hold)
    [ "G !(c1 & c2)"; "G (t1 -> F c1)"; "F c1"; "G F (c1 | n1)";
      "G (c1 -> X !c1)" ]

let prop_translation_random_formulas =
  (* Random formula generator over one proposition. *)
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 1 then
            oneofl
              [ Formula.True; Formula.False; Formula.Prop "a" ]
          else
            let sub = self (n / 2) in
            oneof
              [ map (fun f -> Formula.Not f) sub;
                map (fun f -> Formula.Next f) sub;
                map (fun f -> Formula.Eventually f) sub;
                map (fun f -> Formula.Always f) sub;
                map2 (fun a b -> Formula.And (a, b)) sub sub;
                map2 (fun a b -> Formula.Or (a, b)) sub sub;
                map2 (fun a b -> Formula.Until (a, b)) sub sub;
                map2 (fun a b -> Formula.Release (a, b)) sub sub ]))
  in
  let arb = QCheck.make ~print:Formula.to_string gen in
  QCheck.Test.make ~name:"random formulas: translation = semantics"
    ~count:60 arb
    (fun f ->
      QCheck.assume (Formula.size f <= 8);
      let b = Translate.translate ~alphabet:2 ~valuation:v f in
      List.for_all
        (fun w -> Semantics.eval v f w = Buchi.accepts_lasso b w)
        (Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:2))

let tests =
  [ Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "core translation" `Quick test_core_translation;
    Alcotest.test_case "propositions and size" `Quick
      test_propositions_size;
    Alcotest.test_case "semantics oracles" `Quick test_semantics_oracles;
    Alcotest.test_case "semantic dualities" `Quick test_semantics_duality;
    Alcotest.test_case "translation vs semantics (corpus)" `Slow
      test_translation_agrees_with_semantics;
    Alcotest.test_case "translation vs hand-built automata" `Quick
      test_translation_matches_pattern_automata;
    Alcotest.test_case "Rem table regenerated" `Quick test_rem_table;
    Alcotest.test_case "request/response via LTL" `Quick
      test_request_response_formula;
    Alcotest.test_case "NNF preserves semantics" `Quick
      test_nnf_semantics_preserved;
    Alcotest.test_case "syntactic fragments sound" `Slow
      test_syntactic_soundness;
    Alcotest.test_case "fragment membership" `Quick
      test_syntactic_fragment_membership;
    Alcotest.test_case "modelcheck token ring" `Quick
      test_modelcheck_token_ring;
    Alcotest.test_case "modelcheck mutex" `Quick
      test_modelcheck_agreement_with_ctl_shape;
    Alcotest.test_case "split verification" `Quick test_modelcheck_split;
    Alcotest.test_case "split agrees with whole" `Quick
      test_split_agrees_with_check;
    QCheck_alcotest.to_alcotest prop_translation_random_formulas ]
