module Ftree = Sl_tree.Ftree
module Rtree = Sl_tree.Rtree
module Ptree = Sl_tree.Ptree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ftree =
  Alcotest.testable Ftree.pp Ftree.equal

(* Handy small trees over {a=0, b=1}. *)
let leaf_a = Ftree.singleton 0
let leaf_b = Ftree.singleton 1
let a_over_b = Ftree.of_children 0 [ leaf_b ]
let a_over_ab = Ftree.of_children 0 [ leaf_a; leaf_b ]

let test_make_validates () =
  check "prefix closure" true
    (try
       ignore (Ftree.make [ ([ 0 ], 1) ]);
       false
     with Invalid_argument _ -> true);
  check "conflicting labels" true
    (try
       ignore (Ftree.make [ ([], 0); ([], 1) ]);
       false
     with Invalid_argument _ -> true);
  check "negative index" true
    (try
       ignore (Ftree.make [ ([], 0); ([ -1 ], 0) ]);
       false
     with Invalid_argument _ -> true)

let test_basic_observations () =
  check_int "size" 3 (Ftree.size a_over_ab);
  check_int "depth" 1 (Ftree.depth a_over_ab);
  Alcotest.(check (option int)) "label root" (Some 0)
    (Ftree.label a_over_ab []);
  Alcotest.(check (option int)) "label child" (Some 1)
    (Ftree.label a_over_ab [ 1 ]);
  Alcotest.(check (list (list int))) "leaves" [ [ 0 ]; [ 1 ] ]
    (Ftree.leaves a_over_ab);
  check "root not leaf" false (Ftree.is_leaf a_over_ab []);
  check "k-branching" true (Ftree.is_k_branching_prefix a_over_ab 2);
  check "not 2-branching" false (Ftree.is_k_branching_prefix a_over_b 2)

let test_definition1_raw_concat () =
  (* w ⋄ x keeps w's labels on the overlap and can graft at non-leaf
     nodes — the behaviour Definition 3 then corrects. *)
  let w = a_over_b in
  let x = Ftree.of_children 1 [ leaf_a; leaf_a ] in
  let d = Ftree.raw_concat w x in
  Alcotest.(check (option int)) "w's root label wins" (Some 0)
    (Ftree.label d []);
  (* x grafted a second child at the root, which is NOT a leaf of w. *)
  check "grafted at non-leaf" true (Ftree.mem d [ 1 ])

let test_definition3_concat () =
  let w = a_over_b in
  let x = Ftree.of_children 1 [ leaf_a; leaf_a ] in
  let c = Ftree.concat w x in
  (* Only x-nodes inside w or extending w's leaf [0] survive; node [1] of
     x extends the root (a non-leaf), so it is dropped. *)
  check "no graft at non-leaf" false (Ftree.mem c [ 1 ]);
  check "kept inside w" true (Ftree.mem c [ 0 ]);
  (* Grafting below the leaf works. *)
  let x2 = Ftree.make [ ([], 9); ([ 0 ], 9); ([ 0; 1 ], 0) ] in
  let c2 = Ftree.concat w x2 in
  check "extends leaf" true (Ftree.mem c2 [ 0; 1 ]);
  Alcotest.(check (option int)) "w's labels win" (Some 0)
    (Ftree.label c2 []);
  (* Concatenation with the empty tree: ∅x = ∅ and w∅ = w. *)
  Alcotest.check ftree "empty left" Ftree.empty
    (Ftree.concat Ftree.empty x);
  Alcotest.check ftree "empty right" w (Ftree.concat w Ftree.empty)

let test_definition4_prefix () =
  check "leaf <= tree" true (Ftree.prefix leaf_a a_over_ab);
  check "label mismatch" false (Ftree.prefix leaf_b a_over_ab);
  check "self prefix" true (Ftree.prefix a_over_ab a_over_ab);
  check "not prefix (extends non-leaf)" false
    (Ftree.prefix a_over_b a_over_ab);
  (* a_over_b's node [0] is a leaf; a_over_ab adds [1] under the root,
     which is NOT a leaf of a_over_b — so not a prefix, exactly the
     paper's point about extending only at leaves. *)
  check "deep extension is a prefix" true
    (Ftree.prefix a_over_b
       (Ftree.make [ ([], 0); ([ 0 ], 1); ([ 0; 0 ], 0) ]))

let test_prefix_equals_exists_z () =
  (* Definition 4 literally: x <= y iff some z gives xz = y. Brute-force z
     over a small enumeration and compare with the direct test. *)
  let universe = Ftree.enumerate ~alphabet:2 ~max_arity:2 ~max_depth:1 in
  let zs = universe in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let direct = Ftree.prefix x y in
          let witnessed =
            List.exists (fun z -> Ftree.equal (Ftree.concat x z) y) zs
          in
          (* Over this depth-bounded universe every needed witness is
             itself in the universe (z never needs to be deeper than
             y). *)
          if direct <> witnessed then
            Alcotest.failf "prefix mismatch: direct %b, witnessed %b" direct
              witnessed)
        universe)
    universe

let test_prefix_partial_order () =
  let universe = Ftree.enumerate ~alphabet:2 ~max_arity:2 ~max_depth:1 in
  (* Reflexive, antisymmetric, transitive ([14]'s lemma). *)
  List.iter (fun x -> check "refl" true (Ftree.prefix x x)) universe;
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if Ftree.prefix x y && Ftree.prefix y x then
            check "antisym" true (Ftree.equal x y);
          List.iter
            (fun z ->
              if Ftree.prefix x y && Ftree.prefix y z then
                check "trans" true (Ftree.prefix x z))
            universe)
        universe)
    universe

let test_concat_monotone () =
  (* [14]: x <= y implies wx <= wy. *)
  let universe = Ftree.enumerate ~alphabet:2 ~max_arity:2 ~max_depth:1 in
  List.iter
    (fun w ->
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              if Ftree.prefix x y then
                check "monotone" true
                  (Ftree.prefix (Ftree.concat w x) (Ftree.concat w y)))
            universe)
        universe)
    (List.filteri (fun i _ -> i < 12) universe)

let test_subtree () =
  match Ftree.subtree a_over_ab [ 1 ] with
  | None -> Alcotest.fail "subtree exists"
  | Some t -> Alcotest.check ftree "re-rooted" leaf_b t

(* --- Regular trees --- *)

let const_a = Rtree.constant ~k:2 0

let ab_tree =
  (* Root a; left child all-a, right child all-b. *)
  Rtree.make ~k:2 ~nstates:2 ~root:0 ~label:[| 0; 1 |]
    ~children:[| [| 0; 1 |]; [| 1; 1 |] |]

let test_rtree_unfold () =
  let u = Rtree.unfold const_a ~depth:2 in
  check_int "nodes of full binary depth 2" 7 (Ftree.size u);
  check "k-branching prefix" true (Ftree.is_k_branching_prefix u 2);
  Alcotest.(check (option int)) "all a" (Some 0) (Ftree.label u [ 1; 0 ]);
  let u2 = Rtree.unfold ab_tree ~depth:2 in
  Alcotest.(check (option int)) "right subtree b" (Some 1)
    (Ftree.label u2 [ 1; 0 ])

let test_rtree_node_state () =
  Alcotest.(check (option int)) "path to b" (Some 1)
    (Rtree.node_state ab_tree [ 1; 0 ]);
  Alcotest.(check (option int)) "bad index" None
    (Rtree.node_state ab_tree [ 2 ])

let test_rtree_enumerate () =
  let ts = Rtree.enumerate ~alphabet:2 ~k:2 ~max_states:1 in
  (* One state: 2 labels x 1 child assignment. *)
  check_int "single-state count" 2 (List.length ts);
  let ts2 = Rtree.enumerate ~alphabet:2 ~k:2 ~max_states:2 in
  check "includes constants" true
    (List.exists (fun t -> Rtree.equal_presentation t const_a) ts2)

(* --- Partial trees --- *)

let test_ptree_holes_and_totality () =
  let p = Ptree.of_rtree const_a in
  check "no hole" false (Ptree.has_hole p);
  check "total" true (Ptree.is_total p);
  let cut = Ptree.truncation (Ptree.of_rtree const_a) ~depth:1 in
  check "truncation has holes" true (Ptree.has_hole cut);
  check "truncation not total" false (Ptree.is_total cut);
  (* A unary spine is total despite having absent slots, and absent
     slots next to present ones are not holes. *)
  let spine =
    Ptree.make ~k:2 ~nstates:1 ~root:0 ~label:[| 0 |]
      ~children:[| [| Some 0; None |] |]
  in
  check "unary spine total" true (Ptree.is_total spine);
  check "unary spine has no hole" false (Ptree.has_hole spine)

let test_ptree_truncation_matches_unfold () =
  List.iter
    (fun d ->
      let t = Ptree.truncation (Ptree.of_rtree ab_tree) ~depth:d in
      Alcotest.check ftree
        (Printf.sprintf "depth %d" d)
        (Rtree.unfold ab_tree ~depth:d)
        (Ptree.unfold t ~depth:(d + 3)))
    [ 0; 1; 2; 3 ]

let test_ptree_cycles () =
  let p = Ptree.of_rtree ab_tree in
  let is_a q = p.Ptree.label.(q) = 0 in
  check "all-a cycle (left spine)" true (Ptree.has_cycle_within p ~keep:is_a);
  check "cycle through a" true (Ptree.has_reachable_cycle_through p ~pred:is_a);
  check "cycle inside b" true
    (Ptree.has_reachable_cycle_inside p ~pred:(fun q -> not (is_a q)));
  (* Cutting below the root removes everything: depth 1 has exactly one
     variant, the bare root. *)
  let variants = Ptree.cut_variants (Ptree.of_rtree ab_tree) ~depth:1 in
  check_int "one variant at depth 1" 1 (List.length variants);
  check "root variant kills the a-cycle" true
    (List.for_all
       (fun v ->
         not
           (Ptree.has_cycle_within v ~keep:(fun q -> v.Ptree.label.(q) = 0)))
       variants);
  (* At depth 2 one variant cuts the right (b) child and keeps the all-a
     left spine. *)
  let v2 = Ptree.cut_variants (Ptree.of_rtree ab_tree) ~depth:2 in
  check "some depth-2 variant keeps the a-cycle" true
    (List.exists
       (fun v -> Ptree.has_cycle_within v ~keep:(fun q -> v.Ptree.label.(q) = 0))
       v2)

let test_ptree_cut_variants_preserve_rest () =
  (* Each variant is non-total and its unfolding is a prefix of the
     original tree's unfolding. *)
  List.iter
    (fun v ->
      check "variant non-total" false (Ptree.is_total v);
      check "variant unfold is prefix" true
        (Ftree.prefix (Ptree.unfold v ~depth:3)
           (Rtree.unfold ab_tree ~depth:3)))
    (Ptree.cut_variants (Ptree.of_rtree ab_tree) ~depth:2)

let test_enumerate_total () =
  let ts = Ptree.enumerate_total ~alphabet:2 ~k:2 ~max_states:1 in
  (* One state: 2 labels x 3 nonempty child patterns (left/right/both). *)
  check_int "unary+binary singles" 6 (List.length ts);
  check "all total" true (List.for_all Ptree.is_total ts)

let tests =
  [ Alcotest.test_case "ftree validation" `Quick test_make_validates;
    Alcotest.test_case "ftree observations" `Quick test_basic_observations;
    Alcotest.test_case "Definition 1 (raw concat)" `Quick
      test_definition1_raw_concat;
    Alcotest.test_case "Definition 3 (concat)" `Quick
      test_definition3_concat;
    Alcotest.test_case "Definition 4 (prefix)" `Quick
      test_definition4_prefix;
    Alcotest.test_case "prefix = exists z (brute force)" `Slow
      test_prefix_equals_exists_z;
    Alcotest.test_case "prefix partial order" `Slow
      test_prefix_partial_order;
    Alcotest.test_case "concat monotone in prefix" `Slow
      test_concat_monotone;
    Alcotest.test_case "subtrees" `Quick test_subtree;
    Alcotest.test_case "rtree unfolding" `Quick test_rtree_unfold;
    Alcotest.test_case "rtree node lookup" `Quick test_rtree_node_state;
    Alcotest.test_case "rtree enumeration" `Quick test_rtree_enumerate;
    Alcotest.test_case "ptree holes/totality" `Quick
      test_ptree_holes_and_totality;
    Alcotest.test_case "truncation matches unfold" `Quick
      test_ptree_truncation_matches_unfold;
    Alcotest.test_case "ptree cycle analysis" `Quick test_ptree_cycles;
    Alcotest.test_case "cut variants" `Quick
      test_ptree_cut_variants_preserve_rest;
    Alcotest.test_case "total enumeration" `Quick test_enumerate_total ]
