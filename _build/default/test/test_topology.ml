module Cs = Sl_topology.Closure_space
module Tclosure = Sl_tree.Tclosure
module Ptree = Sl_tree.Ptree
module Examples = Sl_ctl.Examples

let check = Alcotest.(check bool)

let ok v = v = Ok ()

let test_discrete_indiscrete () =
  let d = Cs.discrete 3 and i = Cs.indiscrete 3 in
  check "discrete topological" true (ok (Cs.is_topological d));
  check "indiscrete topological" true (ok (Cs.is_topological i));
  Alcotest.(check int) "discrete closed count" 8
    (List.length (Cs.closed_sets d));
  Alcotest.(check int) "indiscrete closed count" 2
    (List.length (Cs.closed_sets i))

let test_from_closed_sets () =
  (* Closed family {∅, 0b001, 0b010} (plus the carrier): meet-closed but
     not union-closed (0b011 is missing) -> lattice closure, not
     topological. *)
  let space = Cs.from_closed_sets ~size:3 ~closed:[ 0b001; 0b010; 0b000 ] in
  check "lattice closure" true (ok (Cs.is_lattice_closure space));
  check "not topological" false (ok (Cs.is_topological space));
  (match Cs.preserves_union space with
  | Error ("does not preserve union", _) -> ()
  | _ -> Alcotest.fail "expected union failure");
  check "not union closed" false (Cs.closed_under_union space);
  check "intersection closed" true (Cs.closed_under_intersection space)

let test_kuratowski_violations () =
  let not_extensive = Cs.make ~size:2 ~cl:(fun _ -> 0) in
  (match Cs.is_extensive not_extensive with
  | Error ("not extensive", _) -> ()
  | _ -> Alcotest.fail "extensivity check");
  let not_idempotent =
    (* Grow by one point per application. *)
    Cs.make ~size:2 ~cl:(fun s ->
        if s = 0b01 then 0b11 else if s = 0 then 0b01 else s)
  in
  match Cs.is_idempotent not_idempotent with
  | Error ("not idempotent", _) -> ()
  | _ -> Alcotest.fail "idempotence check"

let test_lcl_topological () =
  (* The executable shadow of Section 2.2: lcl is a topological closure. *)
  let space, lassos = Cs.lcl_on_lassos ~max_prefix:1 ~max_cycle:2
      ~alphabet:2 in
  check "grid nonempty" true (Array.length lassos > 4);
  check "lcl topological" true (ok (Cs.is_topological space));
  check "lcl union-preserving" true (ok (Cs.preserves_union space));
  check "closed sets union closed" true (Cs.closed_under_union space)

(* The paper's Section 4.2 asymmetry: fcl defines a topology, ncl does
   not — ncl (p ∪ q) can exceed ncl p ∪ ncl q. Witness: the total tree
   with an all-a spine to the left and an all-b spine to the right, with
   p = q4a (all paths eventually free of a) and q = q5a (all paths hit a
   forever). *)
let two_spines =
  (* 0: root a; 1: a-spine (unary); 2: b-spine (unary). *)
  Ptree.make ~k:2 ~nstates:3 ~root:0 ~label:[| 0; 0; 1 |]
    ~children:
      [| [| Some 1; Some 2 |]; [| Some 1; None |]; [| Some 2; None |] |]

let test_ncl_not_topological () =
  let p = Examples.q4a and q = Examples.q5a in
  let u = Tclosure.union p q in
  let y = two_spines in
  check "y total" true (Ptree.is_total y);
  check "y not in p" false (p.Tclosure.mem y);
  check "y not in q" false (q.Tclosure.mem y);
  (* Every non-total prefix of y kills one spine or the other, so it
     extends into p or into q... *)
  check "y in ncl (p|q)" true (Tclosure.ncl_mem u ~max_depth:4 y);
  (* ...but the prefix cutting inside the b-spine keeps the a-spine and
     refutes ncl p; symmetrically for q. *)
  check "y not in ncl p" false (Tclosure.ncl_mem p ~max_depth:4 y);
  check "y not in ncl q" false (Tclosure.ncl_mem q ~max_depth:4 y)

let test_fcl_is_topological_on_same_witness () =
  (* fcl (p ∪ q) = fcl p ∪ fcl q holds on the whole sample for the same
     pair (both sides are everything here: q4a and q5a are universally
     live). *)
  let p = Examples.q4a and q = Examples.q5a in
  let u = Tclosure.union p q in
  List.iter
    (fun y ->
      check "fcl distributes"
        (Tclosure.fcl_mem u ~max_depth:3 y)
        (Tclosure.fcl_mem p ~max_depth:3 y
        || Tclosure.fcl_mem q ~max_depth:3 y))
    (two_spines :: Examples.sample)

let test_fcl_union_across_pairs () =
  (* Distribution of fcl over unions across all pairs of the q-examples
     on the shared sample. *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          let u = Tclosure.union p q in
          List.iter
            (fun y ->
              check
                (Printf.sprintf "fcl(%s | %s)" p.Tclosure.name
                   q.Tclosure.name)
                (Tclosure.fcl_mem u ~max_depth:2 y)
                (Tclosure.fcl_mem p ~max_depth:2 y
                || Tclosure.fcl_mem q ~max_depth:2 y))
            Examples.sample)
        [ Examples.q1; Examples.q3a; Examples.q4a; Examples.q5a ])
    [ Examples.q2; Examples.q4b; Examples.q5b ]

let tests =
  [ Alcotest.test_case "discrete / indiscrete" `Quick
      test_discrete_indiscrete;
    Alcotest.test_case "closure from closed family" `Quick
      test_from_closed_sets;
    Alcotest.test_case "axiom violations detected" `Quick
      test_kuratowski_violations;
    Alcotest.test_case "lcl is topological (sampled)" `Quick
      test_lcl_topological;
    Alcotest.test_case "ncl is not topological (Section 4.2)" `Quick
      test_ncl_not_topological;
    Alcotest.test_case "fcl distributes on the witness" `Quick
      test_fcl_is_topological_on_same_witness;
    Alcotest.test_case "fcl distributes across pairs" `Slow
      test_fcl_union_across_pairs ]
