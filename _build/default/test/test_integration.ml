(* Cross-library integration checks: the same mathematical objects viewed
   through different substrates must agree. *)

module Lattice = Sl_lattice.Lattice
module Named = Sl_lattice.Named
module Lclosure = Sl_lattice.Closure
module Galois = Sl_lattice.Galois
module Birkhoff = Sl_lattice.Birkhoff
module Poset = Sl_order.Poset
module Finite_check = Sl_core.Finite_check
module Lasso = Sl_word.Lasso
module Buchi = Sl_buchi.Buchi
module Decompose = Sl_buchi.Decompose
module Monitor = Sl_buchi.Monitor
module Formula = Sl_ltl.Formula
module Semantics = Sl_ltl.Semantics
module Translate = Sl_ltl.Translate
module Lexamples = Sl_ltl.Examples
module Modelcheck = Sl_ltl.Modelcheck
module Kripke = Sl_kripke.Kripke
module Ptree = Sl_tree.Ptree
module Cexamples = Sl_ctl.Examples
module Tclosure = Sl_tree.Tclosure

let check = Alcotest.(check bool)

let lassos = Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:3

(* 1. Monitors never reject prefixes of accepted words, and always reject
   some prefix of safety-violating words. *)
let test_monitor_vs_membership () =
  List.iter
    (fun (name, f) ->
      let b = Lexamples.automaton f in
      let safety = Sl_buchi.Closure.bcl b in
      List.iter
        (fun w ->
          let m = Monitor.create b in
          let verdict = Monitor.feed m (Lasso.first_n w 8) in
          if Buchi.accepts_lasso b w then
            check (name ^ ": member never tripped") true
              (verdict = Monitor.Admissible);
          if not (Buchi.accepts_lasso safety w) then
            check (name ^ ": safety violator tripped") true
              (match verdict with Monitor.Violation _ -> true | _ -> false))
        lassos)
    (List.filter (fun (n, _) -> n <> "p0") Lexamples.all)

(* 2. Model checking = universal truth over the structure's lasso paths. *)
let test_modelcheck_vs_path_semantics () =
  let k = Kripke.token_ring 3 in
  let props = [ "tok0"; "tok1"; "tok2" ] in
  let v = Semantics.subset_valuation props in
  let symbol_of_state q =
    List.fold_left
      (fun acc (i, p) -> if Kripke.holds k q p then acc lor (1 lsl i) else acc)
      0
      (List.mapi (fun i p -> (i, p)) props)
  in
  let path_words =
    List.map
      (fun (spoke, cycle) ->
        Lasso.make
          ~prefix:(List.map symbol_of_state spoke)
          ~cycle:(List.map symbol_of_state cycle))
      (Kripke.lasso_paths k ~from:k.Kripke.initial ~max_len:6)
  in
  check "ring has lasso paths" true (path_words <> []);
  List.iter
    (fun s ->
      let f = Formula.parse_exn s in
      let by_product =
        Modelcheck.check k ~alphabet:8 ~valuation:v f = Modelcheck.Holds
      in
      let by_paths = List.for_all (fun w -> Semantics.eval v f w) path_words in
      (* The deterministic ring has exactly one run, so lasso paths are
         exhaustive and the two must coincide. *)
      check ("paths vs product: " ^ s) by_paths by_product)
    [ "G F tok0"; "F G tok0"; "G (tok0 -> X tok1)"; "G (tok0 -> X tok2)";
      "tok0 U tok1" ]

(* 3. Classification is consistent across levels: formula, automaton,
   and abstract lattice. *)
let test_classification_three_ways () =
  List.iter
    (fun (name, f) ->
      let b = Lexamples.automaton f in
      let by_formula = Lexamples.classify f in
      let by_automaton = Decompose.classify b in
      Alcotest.(check string)
        (name ^ ": formula vs automaton")
        (Decompose.classification_to_string by_formula)
        (Decompose.classification_to_string by_automaton);
      (* Lattice view: safety iff the element equals its closure, decided
         by the generic predicates over the language lattice. *)
      let module L = (val Decompose.language_lattice ~alphabet:2 ()) in
      let module T = Sl_core.Theory.Make (L) in
      let lattice_safety = T.is_safety Decompose.lcl b in
      let lattice_liveness = T.is_liveness Decompose.lcl b in
      check (name ^ ": lattice safety")
        (by_formula = Decompose.Safety || by_formula = Decompose.Both)
        lattice_safety;
      check (name ^ ": lattice liveness")
        (by_formula = Decompose.Liveness || by_formula = Decompose.Both)
        lattice_liveness)
    [ ("p1", Lexamples.p1); ("p3", Lexamples.p3); ("p5", Lexamples.p5);
      ("p6", Lexamples.p6) ]

(* 4. Random distributive lattices via Birkhoff: theorems hold with
   randomly chosen closures. *)
let prop_random_distributive_lattices =
  QCheck.Test.make ~name:"theorems on random Birkhoff lattices" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      (* Random poset on 3 points -> its downset lattice (distributive,
         size <= 8). *)
      let n = 3 in
      let covers =
        List.concat
          (List.init n (fun i ->
               List.filteri (fun j _ -> j > i)
                 (List.init n (fun j -> (i, j)))
               |> List.filter (fun _ -> Random.State.bool st)))
      in
      let poset = Poset.of_covers ~size:n ~covers in
      let l, _ = Birkhoff.downset_lattice poset in
      QCheck.assume (Lattice.is_complemented l);
      (* A random closure: a random subset of elements as closed seeds. *)
      let seeds =
        List.filter (fun _ -> Random.State.bool st) (Lattice.elements l)
      in
      let cl = Lclosure.of_closed_set l seeds in
      Finite_check.check_theorem2 l cl = Ok ()
      && Finite_check.check_theorem7 l ~cl1:cl ~cl2:cl = Ok ()
      && Finite_check.check_theorem8 l ~cl1:cl ~cl2:cl = Ok ())

(* Downset lattices are only complemented when the poset is an antichain;
   sample with relaxed assumption instead: drop to theorem 6 (no
   complementation needed) when not complemented. *)
let prop_random_distributive_theorem6 =
  QCheck.Test.make ~name:"theorem 6 on random Birkhoff lattices" ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 3 in
      let covers =
        List.concat
          (List.init n (fun i ->
               List.filteri (fun j _ -> j > i)
                 (List.init n (fun j -> (i, j)))
               |> List.filter (fun _ -> Random.State.bool st)))
      in
      let poset = Poset.of_covers ~size:n ~covers in
      let l, _ = Birkhoff.downset_lattice poset in
      let seeds =
        List.filter (fun _ -> Random.State.bool st) (Lattice.elements l)
      in
      let cl = Lclosure.of_closed_set l seeds in
      Finite_check.check_theorem6 l ~cl1:cl ~cl2:cl = Ok ())

(* 5. The Galois-induced lcl closure fits the decomposition theorem on the
   observation powerset. *)
let test_galois_closure_theorem2 () =
  let c = Galois.lcl_connection ~max_len:2 ~alphabet:2 in
  let l = Lattice.of_poset c.Galois.left in
  let cl = Lclosure.make l (Galois.closure_of c) in
  Alcotest.(check
              (result unit (Alcotest.testable Fmt.string ( = ))))
    "theorem 2 for the Galois lcl" (Ok ())
    (Finite_check.check_theorem2 l cl)

(* 6. Words as unary trees: the branching q-properties restricted to
   spine trees coincide with the linear p-properties on the corresponding
   lasso words. *)
let spine_of_lasso w =
  (* One Ptree state per distinct position; child 0 follows the word,
     child 1 absent. *)
  let total = Lasso.total_length w in
  let spoke = Lasso.spoke w in
  let next p = if p + 1 < total then p + 1 else spoke in
  Ptree.make ~k:2 ~nstates:total ~root:0
    ~label:(Array.init total (Lasso.at w))
    ~children:(Array.init total (fun p -> [| Some (next p); None |]))

let test_words_as_unary_trees () =
  let v = Lexamples.valuation in
  let cases =
    [ (Cexamples.q1, Lexamples.p1); (Cexamples.q2, Lexamples.p2);
      (Cexamples.q3a, Lexamples.p3); (Cexamples.q3b, Lexamples.p3);
      (Cexamples.q4a, Lexamples.p4); (Cexamples.q4b, Lexamples.p4);
      (Cexamples.q5a, Lexamples.p5); (Cexamples.q5b, Lexamples.p5) ]
  in
  List.iter
    (fun w ->
      let tree = spine_of_lasso w in
      List.iter
        (fun (q, p) ->
          check
            (Printf.sprintf "%s on %s" q.Tclosure.name (Lasso.to_string w))
            (Semantics.eval v p w)
            (q.Tclosure.mem tree))
        cases)
    lassos

let tests =
  [ Alcotest.test_case "monitors vs membership" `Slow
      test_monitor_vs_membership;
    Alcotest.test_case "model checking vs path semantics" `Quick
      test_modelcheck_vs_path_semantics;
    Alcotest.test_case "classification three ways" `Slow
      test_classification_three_ways;
    QCheck_alcotest.to_alcotest prop_random_distributive_lattices;
    QCheck_alcotest.to_alcotest prop_random_distributive_theorem6;
    Alcotest.test_case "Galois lcl satisfies theorem 2" `Quick
      test_galois_closure_theorem2;
    Alcotest.test_case "words as unary trees" `Quick
      test_words_as_unary_trees ]
