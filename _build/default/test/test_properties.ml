(* Cross-cutting property-based suites: algebraic laws the substrates must
   satisfy, sampled over random or exhaustively enumerated inputs. *)

module Poset = Sl_order.Poset
module Lattice = Sl_lattice.Lattice
module Named = Sl_lattice.Named
module Closure = Sl_lattice.Closure
module Lasso = Sl_word.Lasso
module Buchi = Sl_buchi.Buchi
module Ops = Sl_buchi.Ops
module Bclosure = Sl_buchi.Closure
module Hierarchy = Sl_buchi.Hierarchy
module Patterns = Sl_buchi.Patterns
module Ftree = Sl_tree.Ftree

let check = Alcotest.(check bool)

let small_lassos = Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:2

(* --- Lattice algebra --- *)

let prop_product_laws =
  QCheck.Test.make ~name:"product lattice: modular iff both factors"
    ~count:30
    QCheck.(pair (int_range 0 16) (int_range 0 16))
    (fun (i, j) ->
      let corpus = Array.of_list (List.map snd Named.all_small) in
      let a = corpus.(i mod Array.length corpus) in
      let b = corpus.(j mod Array.length corpus) in
      QCheck.assume (Lattice.size a * Lattice.size b <= 40);
      let p = Lattice.product a b in
      Lattice.is_modular p = (Lattice.is_modular a && Lattice.is_modular b)
      && Lattice.is_distributive p
         = (Lattice.is_distributive a && Lattice.is_distributive b))

let prop_closure_meet_system =
  (* The pointwise meet of the closed-set systems (union of closed
     families' intersection...) — precisely: intersecting two closure
     systems yields a closure system, whose operator dominates both. *)
  QCheck.Test.make ~name:"intersection of closure systems is a closure"
    ~count:40
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (s1, s2) ->
      let l = Named.boolean 2 in
      let pick seed =
        let st = Random.State.make [| seed |] in
        List.filter (fun _ -> Random.State.bool st) (Lattice.elements l)
      in
      let cl1 = Closure.of_closed_set l (pick s1) in
      let cl2 = Closure.of_closed_set l (pick s2) in
      let joint =
        Closure.of_closed_set l
          (List.filter
             (fun x -> Closure.is_closed cl1 x && Closure.is_closed cl2 x)
             (Lattice.elements l))
      in
      Closure.pointwise_leq cl1 joint && Closure.pointwise_leq cl2 joint)

let prop_dual_involution =
  QCheck.Test.make ~name:"dual of dual is the lattice" ~count:20
    QCheck.(int_range 0 16)
    (fun i ->
      let corpus = Array.of_list (List.map snd Named.all_small) in
      let l = corpus.(i mod Array.length corpus) in
      QCheck.assume (Lattice.size l <= 16);
      Poset.equal
        (Lattice.poset (Lattice.dual (Lattice.dual l)))
        (Lattice.poset l))

(* --- Lasso algebra --- *)

let prop_append_shift_inverse =
  QCheck.Test.make ~name:"shift undoes append_prefix" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 3) (int_bound 1))
        (pair (list_of_size Gen.(0 -- 2) (int_bound 1))
           (list_of_size Gen.(1 -- 3) (int_bound 1))))
    (fun (u, (p, c)) ->
      let w = Lasso.make ~prefix:p ~cycle:c in
      Lasso.equal (Lasso.shift (Lasso.append_prefix u w) (List.length u)) w)

let prop_map_identity =
  QCheck.Test.make ~name:"map id = id" ~count:100
    QCheck.(
      pair (list_of_size Gen.(0 -- 3) (int_bound 2))
        (list_of_size Gen.(1 -- 3) (int_bound 2)))
    (fun (p, c) ->
      let w = Lasso.make ~prefix:p ~cycle:c in
      Lasso.equal (Lasso.map Fun.id w) w)

(* --- Büchi algebra (sampled on the lasso grid) --- *)

let random_buchi seed n =
  Buchi.random ~seed ~alphabet:2 ~nstates:n ~density:0.3
    ~accepting_fraction:0.4 ()

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutes (per lasso)" ~count:40
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (s1, s2) ->
      let a = random_buchi s1 4 and b = random_buchi s2 4 in
      List.for_all
        (fun w ->
          Buchi.accepts_lasso (Ops.union a b) w
          = Buchi.accepts_lasso (Ops.union b a) w)
        small_lassos)

let prop_intersect_idempotent =
  QCheck.Test.make ~name:"intersection with itself (per lasso)" ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let a = random_buchi seed 4 in
      List.for_all
        (fun w ->
          Buchi.accepts_lasso (Ops.intersect a a) w
          = Buchi.accepts_lasso a w)
        small_lassos)

let prop_demorgan_sampled =
  QCheck.Test.make ~name:"closure distributes over union (lcl is topological)"
    ~count:30
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (s1, s2) ->
      let a = random_buchi s1 4 and b = random_buchi s2 4 in
      (* lcl(A ∪ B) = lcl A ∪ lcl B — the union axiom that holds in the
         linear framework (and fails for ncl on trees). *)
      List.for_all
        (fun w ->
          Buchi.accepts_lasso (Bclosure.bcl (Ops.union a b)) w
          = Buchi.accepts_lasso (Ops.union (Bclosure.bcl a) (Bclosure.bcl b)) w)
        small_lassos)

(* --- Structural hierarchy --- *)

let test_hierarchy_patterns () =
  Alcotest.(check string) "p1 terminal" "terminal"
    (Hierarchy.classify_structural Patterns.p1);
  Alcotest.(check string) "p3 terminal" "terminal"
    (Hierarchy.classify_structural Patterns.p3);
  Alcotest.(check string) "p4 weak" "weak"
    (Hierarchy.classify_structural Patterns.p4);
  Alcotest.(check string) "p5 general" "general"
    (Hierarchy.classify_structural Patterns.p5);
  Alcotest.(check string) "p6 safety-shaped" "safety-shaped"
    (Hierarchy.classify_structural Patterns.p6);
  (* bcl always produces safety-shaped automata (on nonempty input). *)
  List.iter
    (fun (name, _, b) ->
      if not (Buchi.is_empty b) then
        Alcotest.(check string)
          (name ^ " closure shape")
          "safety-shaped"
          (Hierarchy.classify_structural (Bclosure.bcl b)))
    Patterns.rem_examples

let test_terminal_complement_is_safety () =
  (* The safety complement construction yields terminal automata, and
     terminal languages have safety complements: the two constructions
     are dual. *)
  let closed = Bclosure.bcl Patterns.p3 in
  let comp = Sl_buchi.Complement.complement_closed closed in
  check "complement of closed is terminal" true (Hierarchy.is_terminal comp);
  check "terminal is weak" true (Hierarchy.is_weak comp)

let prop_terminal_implies_weak =
  QCheck.Test.make ~name:"terminal automata are weak" ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
      let b = random_buchi seed 5 in
      QCheck.assume (Hierarchy.is_terminal b);
      Hierarchy.is_weak b)

let tests =
  [ QCheck_alcotest.to_alcotest prop_product_laws;
    QCheck_alcotest.to_alcotest prop_closure_meet_system;
    QCheck_alcotest.to_alcotest prop_dual_involution;
    QCheck_alcotest.to_alcotest prop_append_shift_inverse;
    QCheck_alcotest.to_alcotest prop_map_identity;
    QCheck_alcotest.to_alcotest prop_union_commutes;
    QCheck_alcotest.to_alcotest prop_intersect_idempotent;
    QCheck_alcotest.to_alcotest prop_demorgan_sampled;
    Alcotest.test_case "hierarchy of the patterns" `Quick
      test_hierarchy_patterns;
    Alcotest.test_case "terminal/safety duality" `Quick
      test_terminal_complement_is_safety;
    QCheck_alcotest.to_alcotest prop_terminal_implies_weak ]
