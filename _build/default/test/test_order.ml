module Poset = Sl_order.Poset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_chain () =
  let p = Poset.chain 4 in
  check "0<=3" true (Poset.leq p 0 3);
  check "3<=0" false (Poset.leq p 3 0);
  check_int "height" 4 (Poset.height p);
  check_int "width" 1 (Poset.width p);
  Alcotest.(check (list (pair int int)))
    "covers" [ (0, 1); (1, 2); (2, 3) ] (Poset.covers p)

let test_antichain () =
  let p = Poset.antichain 5 in
  check_int "height" 1 (Poset.height p);
  check_int "width" 5 (Poset.width p);
  check "incomparable" false (Poset.comparable p 0 1)

let test_powerset () =
  let p = Poset.powerset 3 in
  check_int "size" 8 (Poset.size p);
  check "sub" true (Poset.leq p 0b001 0b011);
  check "not sub" false (Poset.leq p 0b011 0b101);
  check_int "height" 4 (Poset.height p);
  check_int "width" 3 (Poset.width p);
  Alcotest.(check (option int)) "bottom" (Some 0) (Poset.bottom p);
  Alcotest.(check (option int)) "top" (Some 7) (Poset.top p)

let test_divisors () =
  let p, ds = Poset.divisors 12 in
  Alcotest.(check (array int)) "divisors" [| 1; 2; 3; 4; 6; 12 |] ds;
  check "2 | 4" true (Poset.leq p 1 3);
  check "4 | 6 fails" false (Poset.leq p 3 4);
  check_int "height(12)" 4 (Poset.height p)

let test_of_covers_rejects_cycle () =
  Alcotest.check_raises "cycle"
    (Poset.Invalid_order "not antisymmetric at (0, 1)") (fun () ->
      ignore (Poset.of_covers ~size:2 ~covers:[ (0, 1); (1, 0) ]))

let test_make_rejects_non_transitive () =
  let raised =
    try
      ignore
        (Poset.make ~size:3 ~leq:(fun x y ->
             x = y || (x = 0 && y = 1) || (y = 2 && x = 1)));
      false
    with Poset.Invalid_order _ -> true
  in
  check "non-transitive rejected" true raised

let test_meets_joins () =
  let p = Poset.powerset 2 in
  Alcotest.(check (option int)) "meet" (Some 0b00)
    (Poset.meet_opt p 0b01 0b10);
  Alcotest.(check (option int)) "join" (Some 0b11)
    (Poset.join_opt p 0b01 0b10);
  (* Remove the top of the square: join of the two atoms disappears. *)
  let q =
    Poset.make ~size:3 ~leq:(fun x y -> x = y || (x = 0 && (y = 1 || y = 2)))
  in
  Alcotest.(check (option int)) "no join" None (Poset.join_opt q 1 2)

let test_up_down_sets () =
  let p = Poset.powerset 2 in
  Alcotest.(check (list int)) "down of atom" [ 0b00; 0b01 ]
    (Poset.down_set p 0b01);
  Alcotest.(check (list int)) "up of atom" [ 0b01; 0b11 ]
    (Poset.up_set p 0b01);
  check "down-set" true (Poset.is_down_set p [ 0; 1 ]);
  check "not down-set" false (Poset.is_down_set p [ 1 ]);
  Alcotest.(check (list int)) "down closure" [ 0; 1 ]
    (Poset.down_closure p [ 1 ])

let test_chains_antichains () =
  let p = Poset.powerset 2 in
  check "chain" true (Poset.is_chain p [ 0b00; 0b01; 0b11 ]);
  check "not chain" false (Poset.is_chain p [ 0b01; 0b10 ]);
  check "antichain" true (Poset.is_antichain p [ 0b01; 0b10 ]);
  check "not antichain" false (Poset.is_antichain p [ 0b00; 0b01 ])

let test_chain_cover () =
  List.iter
    (fun (name, p) ->
      let cover = Poset.minimum_chain_cover p in
      check_int (name ^ ": Dilworth count") (Poset.width p)
        (List.length cover);
      (* The cover partitions the carrier into genuine chains. *)
      List.iter
        (fun c -> check (name ^ ": is chain") true (Poset.is_chain p c))
        cover;
      Alcotest.(check (list int))
        (name ^ ": partition")
        (Poset.elements p)
        (List.sort compare (List.concat cover)))
    [ ("chain5", Poset.chain 5); ("antichain4", Poset.antichain 4);
      ("bool3", Poset.powerset 3); ("div12", fst (Poset.divisors 12)) ]

let test_all_down_sets () =
  (* Down-sets of the 2-antichain: {}, {0}, {1}, {0,1}. *)
  let p = Poset.antichain 2 in
  Alcotest.(check int) "count" 4 (List.length (Poset.all_down_sets p));
  (* Down-sets of a 3-chain: 4. *)
  let c = Poset.chain 3 in
  Alcotest.(check int) "chain count" 4 (List.length (Poset.all_down_sets c));
  (* Fence/vee poset 0 < 1, 0 < 2: {}, {0}, {0,1}, {0,2}, {0,1,2}. *)
  let v = Poset.of_covers ~size:3 ~covers:[ (0, 1); (0, 2) ] in
  Alcotest.(check int) "vee count" 5 (List.length (Poset.all_down_sets v))

let test_product_dual () =
  let p = Poset.product (Poset.chain 2) (Poset.chain 2) in
  check "square iso to powerset 2" true
    (Option.is_some (Poset.isomorphic p (Poset.powerset 2)));
  let d = Poset.dual (Poset.chain 3) in
  check "dual reverses" true (Poset.leq d 2 0)

let test_linear_extension () =
  let p = Poset.powerset 3 in
  let ext = Poset.linear_extension p in
  let rec respects = function
    | [] -> true
    | x :: rest ->
        List.for_all (fun y -> not (Poset.lt p y x)) rest && respects rest
  in
  check "respects order" true (respects ext);
  check_int "length" 8 (List.length ext)

let test_monotone () =
  let c3 = Poset.chain 3 and c2 = Poset.chain 2 in
  check "floor monotone" true
    (Poset.is_monotone c3 c2 (fun x -> if x >= 1 then 1 else 0));
  check "flip not monotone" false (Poset.is_monotone c3 c3 (fun x -> 2 - x));
  check "embedding" true
    (Poset.is_order_embedding c2 c3 (fun x -> if x = 0 then 0 else 2))

let test_isomorphism () =
  check "chain3 ~ chain3" true
    (Option.is_some (Poset.isomorphic (Poset.chain 3) (Poset.chain 3)));
  check "chain3 !~ antichain3" false
    (Option.is_some (Poset.isomorphic (Poset.chain 3) (Poset.antichain 3)));
  check "different sizes" false
    (Option.is_some (Poset.isomorphic (Poset.chain 3) (Poset.chain 4)))

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_dot_export () =
  let dot = Poset.to_dot (Poset.chain 2) in
  check "has edge" true (contains_substring dot "n0 -> n1")

let tests =
  [ Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "antichain" `Quick test_antichain;
    Alcotest.test_case "powerset" `Quick test_powerset;
    Alcotest.test_case "divisors" `Quick test_divisors;
    Alcotest.test_case "of_covers rejects cycles" `Quick
      test_of_covers_rejects_cycle;
    Alcotest.test_case "make rejects non-transitive" `Quick
      test_make_rejects_non_transitive;
    Alcotest.test_case "meets and joins" `Quick test_meets_joins;
    Alcotest.test_case "up/down sets" `Quick test_up_down_sets;
    Alcotest.test_case "chains and antichains" `Quick test_chains_antichains;
    Alcotest.test_case "minimum chain cover" `Quick test_chain_cover;
    Alcotest.test_case "all down-sets" `Quick test_all_down_sets;
    Alcotest.test_case "product and dual" `Quick test_product_dual;
    Alcotest.test_case "linear extension" `Quick test_linear_extension;
    Alcotest.test_case "monotone maps" `Quick test_monotone;
    Alcotest.test_case "isomorphism search" `Quick test_isomorphism;
    Alcotest.test_case "dot export" `Quick test_dot_export ]
