module Mu = Sl_mu.Mu
module Ctl = Sl_ctl.Ctl
module Kripke = Sl_kripke.Kripke

let check = Alcotest.(check bool)

let ok_sat k f =
  match Mu.sat k f with
  | Ok v -> v
  | Error e -> Alcotest.failf "sat error: %s" e

let test_parser () =
  List.iter
    (fun s ->
      match Mu.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok f -> (
          match Mu.parse (Mu.to_string f) with
          | Ok f' when f = f' -> ()
          | Ok f' -> Alcotest.failf "roundtrip %S -> %s" s (Mu.to_string f')
          | Error e -> Alcotest.failf "reparse: %s" e))
    [ "mu X . p | <> X"; "nu Y . p & [] Y"; "<> true"; "[] false";
      "mu X . (p & <> X) | q"; "nu X . mu Y . (p & <> X) | <> Y";
      "p -> <> q" ];
  check "unbound dot" true (Result.is_error (Mu.parse "mu . p"));
  check "lowercase binder" true (Result.is_error (Mu.parse "mu x . p"))

let test_static_checks () =
  check "well named" true (Mu.well_named (Mu.parse_exn "mu X . <> X"));
  check "shadowing rejected" false
    (Mu.well_named (Mu.parse_exn "mu X . mu X . <> X"));
  check "positive" true (Mu.positive (Mu.parse_exn "mu X . p | <> X"));
  check "negative occurrence" false
    (Mu.positive (Mu.parse_exn "mu X . !X"));
  check "double negation fine" true
    (Mu.positive (Mu.parse_exn "mu X . !!X"))

let test_sat_errors () =
  let k = Kripke.token_ring 3 in
  check "free variable" true
    (Result.is_error (Mu.sat k (Mu.parse_exn "<> X")));
  check "non-monotone" true
    (Result.is_error (Mu.sat k (Mu.parse_exn "mu X . !X")))

let test_fixpoints_on_ring () =
  let k = Kripke.token_ring 3 in
  (* EF tok1 = mu X . tok1 | <> X: true everywhere on a ring. *)
  Alcotest.(check (array bool)) "reachability"
    [| true; true; true |]
    (ok_sat k (Mu.parse_exn "mu X . tok1 | <> X"));
  (* nu X . tok0 & <> X: a tok0-cycle — impossible in the ring. *)
  Alcotest.(check (array bool)) "no constant cycle"
    [| false; false; false |]
    (ok_sat k (Mu.parse_exn "nu X . tok0 & <> X"));
  (* nu X . <> X: totality. *)
  Alcotest.(check (array bool)) "totality" [| true; true; true |]
    (ok_sat k (Mu.parse_exn "nu X . <> X"))

let test_ctl_embedding () =
  let structures =
    [ Kripke.token_ring 4; Kripke.mutex ();
      Kripke.random ~seed:5 ~nstates:7 ~ap:[| "p"; "q" |] ~density:0.3 ();
      Kripke.random ~seed:9 ~nstates:5 ~ap:[| "p"; "q" |] ~density:0.5 () ]
  in
  let formulas =
    [ "EX p"; "AX p"; "EF q"; "AF q"; "EG p"; "AG (p -> EF q)";
      "E (p U q)"; "A (p U q)"; "EF EG p"; "AG AF q" ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun s ->
          match Ctl.parse s with
          | Error _ -> ()
          | Ok f ->
              Alcotest.(check (array bool))
                ("embedding: " ^ s)
                (Ctl.sat k f)
                (ok_sat k (Mu.of_ctl f)))
        formulas)
    structures

let test_alternation_example () =
  (* nu X . mu Y . ((p & <> X) | <> Y): "some path visits p infinitely
     often" — the classical alternation-depth-2 formula. Compare against
     the cycle-analysis CTL* oracle. *)
  let f = Mu.parse_exn "nu X . mu Y . (p & <> X) | <> Y" in
  List.iter
    (fun seed ->
      let k =
        Kripke.random ~seed ~nstates:6 ~ap:[| "p" |] ~density:0.3 ()
      in
      let by_mu = ok_sat k f in
      let by_cycles =
        Sl_ctl.Ctlstar.e_gf k ~pred:(Sl_ctl.Ctlstar.prop_pred k "p")
      in
      Alcotest.(check (array bool))
        (Printf.sprintf "EGF p (seed %d)" seed)
        by_cycles by_mu)
    [ 1; 2; 3; 4; 5; 6 ]

let tests =
  [ Alcotest.test_case "parser" `Quick test_parser;
    Alcotest.test_case "static checks" `Quick test_static_checks;
    Alcotest.test_case "sat errors" `Quick test_sat_errors;
    Alcotest.test_case "fixpoints on the ring" `Quick
      test_fixpoints_on_ring;
    Alcotest.test_case "CTL embedding" `Quick test_ctl_embedding;
    Alcotest.test_case "alternation: E GF p" `Quick
      test_alternation_example ]
