module Kripke = Sl_kripke.Kripke

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_make_validates () =
  check "totality enforced" true
    (try
       ignore
         (Kripke.make ~nstates:2 ~initial:0
            ~successors:[| [ 1 ]; [] |]
            ~ap:[| "p" |]
            ~labels:[| [| true |]; [| false |] |]);
       false
     with Invalid_argument _ -> true);
  check "range checked" true
    (try
       ignore
         (Kripke.make ~nstates:1 ~initial:0 ~successors:[| [ 3 ] |]
            ~ap:[||] ~labels:[| [||] |]);
       false
     with Invalid_argument _ -> true)

let test_mutex () =
  let k = Kripke.mutex () in
  check "has states" true (k.Kripke.nstates > 4);
  (* Every state total; initial labeled n1 & n2. *)
  check "initial n1" true (Kripke.holds k k.Kripke.initial "n1");
  check "initial n2" true (Kripke.holds k k.Kripke.initial "n2");
  (* No state is doubly critical. *)
  check "mutual exclusion (state level)" true
    (List.for_all
       (fun q -> not (Kripke.holds k q "c1" && Kripke.holds k q "c2"))
       (List.init k.Kripke.nstates Fun.id))

let test_token_ring () =
  let k = Kripke.token_ring 4 in
  check_int "states" 4 k.Kripke.nstates;
  check "token at 0" true (Kripke.holds k 0 "tok0");
  Alcotest.(check (list int)) "moves" [ 1 ] k.Kripke.successors.(0)

let test_dining_philosophers () =
  let k = Kripke.dining_philosophers 3 in
  check "nonempty" true (k.Kripke.nstates > 3);
  (* No two adjacent eaters anywhere. *)
  check "fork exclusivity" true
    (List.for_all
       (fun q ->
         not
           (List.exists
              (fun i ->
                Kripke.holds k q (Printf.sprintf "eat%d" i)
                && Kripke.holds k q (Printf.sprintf "eat%d" ((i + 1) mod 3)))
              [ 0; 1; 2 ]))
       (List.init k.Kripke.nstates Fun.id))

let test_peterson () =
  let k = Kripke.peterson () in
  check "reachable states" true (k.Kripke.nstates > 10);
  check "initial idle" true
    (Kripke.holds k k.Kripke.initial "idle1"
    && Kripke.holds k k.Kripke.initial "idle2");
  (* Mutual exclusion at the state level. *)
  check "no doubly critical state" true
    (List.for_all
       (fun q -> not (Kripke.holds k q "c1" && Kripke.holds k q "c2"))
       (List.init k.Kripke.nstates Fun.id))

let test_bounded_buffer () =
  let k = Kripke.bounded_buffer ~capacity:3 in
  check "4 levels" true (k.Kripke.nstates = 4);
  check "initially empty" true (Kripke.holds k k.Kripke.initial "empty");
  check "no state both empty and full" true
    (List.for_all
       (fun q -> not (Kripke.holds k q "empty" && Kripke.holds k q "full"))
       (List.init k.Kripke.nstates Fun.id))

let test_reachability () =
  let k =
    Kripke.make ~nstates:3 ~initial:0
      ~successors:[| [ 0; 1 ]; [ 1 ]; [ 2 ] |]
      ~ap:[| "p" |]
      ~labels:[| [| false |]; [| true |]; [| false |] |]
  in
  Alcotest.(check (array bool)) "state 2 unreachable"
    [| true; true; false |] (Kripke.reachable k);
  let r = Kripke.restrict_reachable k in
  check_int "restricted" 2 r.Kripke.nstates

let test_lasso_paths () =
  let k = Kripke.token_ring 3 in
  let paths = Kripke.lasso_paths k ~from:0 ~max_len:4 in
  (* The deterministic ring has exactly one lasso shape from 0 within the
     bound: spoke [] cycle [0;1;2]. *)
  Alcotest.(check (list (pair (list int) (list int))))
    "ring lasso" [ ([], [ 0; 1; 2 ]) ] paths;
  (* Lassos respect the transition relation. *)
  let k2 = Kripke.mutex () in
  List.iter
    (fun (spoke, cycle) ->
      let states = spoke @ cycle @ [ List.hd cycle ] in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            List.mem b k2.Kripke.successors.(a) && ok rest
        | _ -> true
      in
      check "edges valid" true (ok states))
    (Kripke.lasso_paths k2 ~from:k2.Kripke.initial ~max_len:5)

let test_branching () =
  let k = Kripke.token_ring 3 in
  check_int "ring is unary" 1 (Kripke.branching_degree k);
  check "1-ary" true (Kripke.is_k_ary k 1);
  check "not 2-ary" false (Kripke.is_k_ary k 2)

let test_path_labels () =
  let k = Kripke.token_ring 3 in
  Alcotest.(check (list bool)) "tok0 along the ring" [ true; false; false ]
    (Kripke.path_labels k [ 0; 1; 2 ] "tok0");
  Alcotest.(check (option int)) "ap_index" (Some 1)
    (Kripke.ap_index k "tok1");
  Alcotest.(check (option int)) "missing ap" None
    (Kripke.ap_index k "nope")

let tests =
  [ Alcotest.test_case "validation" `Quick test_make_validates;
    Alcotest.test_case "mutex generator" `Quick test_mutex;
    Alcotest.test_case "token ring" `Quick test_token_ring;
    Alcotest.test_case "dining philosophers" `Quick
      test_dining_philosophers;
    Alcotest.test_case "peterson" `Quick test_peterson;
    Alcotest.test_case "bounded buffer" `Quick test_bounded_buffer;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "lasso paths" `Quick test_lasso_paths;
    Alcotest.test_case "path labels" `Quick test_path_labels;
    Alcotest.test_case "branching degree" `Quick test_branching ]
