module Acceptance = Sl_buchi.Acceptance
module Buchi = Sl_buchi.Buchi
module Patterns = Sl_buchi.Patterns
module Lasso = Sl_word.Lasso

let check = Alcotest.(check bool)

let lassos = Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:3

(* The letter-tracking automaton over {a=0, b=1}: state 0 = just read a,
   state 1 = just read b; deterministic, start at 0 (the first letter
   decides the first real state anyway). *)
let tracker condition =
  Acceptance.make ~alphabet:2 ~nstates:2 ~start:0
    ~delta:[| [| [ 0 ]; [ 1 ] |]; [| [ 0 ]; [ 1 ] |] |]
    ~condition

let inf_a w = Lasso.count_letter w 0 = `Infinitely
let inf_b w = Lasso.count_letter w 1 = `Infinitely

let test_parity_semantics () =
  (* Priorities (0 for a-state, 1 for b-state): least infinite priority
     even iff a occurs infinitely often. *)
  let gf_a = tracker (Acceptance.Parity [| 0; 1 |]) in
  (* Priorities (1, 2): even iff eventually only b. *)
  let fg_b = tracker (Acceptance.Parity [| 1; 2 |]) in
  List.iter
    (fun w ->
      check ("parity GF a on " ^ Lasso.to_string w) (inf_a w)
        (Acceptance.accepts_lasso gf_a w);
      check ("parity FG b on " ^ Lasso.to_string w)
        (not (inf_a w))
        (Acceptance.accepts_lasso fg_b w))
    lassos

let test_rabin_semantics () =
  (* Pair (green = b-state, red = a-state): FG b. *)
  let fg_b =
    tracker (Acceptance.Rabin [ ([| false; true |], [| true; false |]) ])
  in
  (* Two pairs: FG b or GF a — everything. *)
  let total =
    tracker
      (Acceptance.Rabin
         [ ([| false; true |], [| true; false |]);
           ([| true; false |], [| false; false |]) ])
  in
  List.iter
    (fun w ->
      check "rabin FG b" (not (inf_a w)) (Acceptance.accepts_lasso fg_b w);
      check "rabin total" true (Acceptance.accepts_lasso total w))
    lassos

let test_streett_semantics () =
  (* Single pair (green = a-state, red = b-state): GF a -> GF b. *)
  let fair =
    tracker (Acceptance.Streett [ ([| true; false |], [| false; true |]) ])
  in
  List.iter
    (fun w ->
      check
        ("streett on " ^ Lasso.to_string w)
        ((not (inf_a w)) || inf_b w)
        (Acceptance.accepts_lasso fair w))
    lassos;
  (* Two pairs: GF a -> GF b and GF b -> GF a: both infinite or both
     finite; since one letter always recurs, this means both recur. *)
  let both =
    tracker
      (Acceptance.Streett
         [ ([| true; false |], [| false; true |]);
           ([| false; true |], [| true; false |]) ])
  in
  List.iter
    (fun w ->
      check "streett both" (inf_a w && inf_b w)
        (Acceptance.accepts_lasso both w))
    lassos

let test_muller_semantics () =
  (* Infinity set exactly {b-state}: finitely many a. *)
  let fin_a = tracker (Acceptance.Muller [ [| false; true |] ]) in
  (* Exactly {a-state, b-state}: both letters recur. *)
  let both = tracker (Acceptance.Muller [ [| true; true |] ]) in
  List.iter
    (fun w ->
      check "muller fin a" (not (inf_a w))
        (Acceptance.accepts_lasso fin_a w);
      check "muller both" (inf_a w && inf_b w)
        (Acceptance.accepts_lasso both w))
    lassos

let test_of_buchi () =
  List.iter
    (fun (name, _, b) ->
      let a = Acceptance.of_buchi b in
      List.iter
        (fun w ->
          check (name ^ " as rabin") (Buchi.accepts_lasso b w)
            (Acceptance.accepts_lasso a w))
        lassos)
    Patterns.rem_examples

let test_rabin_to_buchi () =
  let cases =
    [ tracker (Acceptance.Rabin [ ([| false; true |], [| true; false |]) ]);
      tracker
        (Acceptance.Rabin
           [ ([| true; false |], [| false; false |]);
             ([| false; true |], [| true; false |]) ]) ]
  in
  List.iter
    (fun a ->
      let b = Acceptance.rabin_to_buchi a in
      List.iter
        (fun w ->
          check "rabin->buchi" (Acceptance.accepts_lasso a w)
            (Buchi.accepts_lasso b w))
        lassos)
    cases

let test_parity_to_buchi () =
  List.iter
    (fun priorities ->
      let a = tracker (Acceptance.Parity priorities) in
      let b = Acceptance.parity_to_buchi a in
      List.iter
        (fun w ->
          check "parity->buchi" (Acceptance.accepts_lasso a w)
            (Buchi.accepts_lasso b w))
        lassos)
    [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 1 |]; [| 0; 0 |]; [| 1; 1 |] ]

let prop_random_rabin_roundtrip =
  QCheck.Test.make ~name:"random rabin: translation = direct semantics"
    ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 1 + Random.State.int st 4 in
      let delta =
        Array.init n (fun _ ->
            Array.init 2 (fun _ ->
                List.filter (fun _ -> Random.State.float st 1.0 < 0.4)
                  (List.init n Fun.id)))
      in
      let pair () =
        ( Array.init n (fun _ -> Random.State.bool st),
          Array.init n (fun _ -> Random.State.float st 1.0 < 0.3) )
      in
      let a =
        Acceptance.make ~alphabet:2 ~nstates:n ~start:0 ~delta
          ~condition:(Acceptance.Rabin [ pair (); pair () ])
      in
      let b = Acceptance.rabin_to_buchi a in
      List.for_all
        (fun w -> Acceptance.accepts_lasso a w = Buchi.accepts_lasso b w)
        (Lasso.enumerate ~alphabet:2 ~max_prefix:2 ~max_cycle:2))

let tests =
  [ Alcotest.test_case "parity semantics" `Quick test_parity_semantics;
    Alcotest.test_case "rabin semantics" `Quick test_rabin_semantics;
    Alcotest.test_case "streett semantics" `Quick test_streett_semantics;
    Alcotest.test_case "muller semantics" `Quick test_muller_semantics;
    Alcotest.test_case "of_buchi" `Quick test_of_buchi;
    Alcotest.test_case "rabin -> buchi" `Quick test_rabin_to_buchi;
    Alcotest.test_case "parity -> buchi" `Quick test_parity_to_buchi;
    QCheck_alcotest.to_alcotest prop_random_rabin_roundtrip ]
