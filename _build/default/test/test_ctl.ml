module Kripke = Sl_kripke.Kripke
module Ctl = Sl_ctl.Ctl
module Fair = Sl_ctl.Fair
module Ctlstar = Sl_ctl.Ctlstar
module Examples = Sl_ctl.Examples
module Tclosure = Sl_tree.Tclosure

let check = Alcotest.(check bool)

let test_parser () =
  List.iter
    (fun s ->
      match Ctl.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok f -> (
          match Ctl.parse (Ctl.to_string f) with
          | Ok f' when f = f' -> ()
          | Ok f' ->
              Alcotest.failf "roundtrip %S -> %s" s (Ctl.to_string f')
          | Error e -> Alcotest.failf "reparse: %s" e))
    [ "AG !(c1 & c2)"; "AG (t1 -> AF c1)"; "E (a U b)"; "A (a U b)";
      "EX a | AX b"; "EF EG a"; "true -> AG false" ];
  check "reject E without U" true (Result.is_error (Ctl.parse "E a"));
  check "reject bad arrow" true (Result.is_error (Ctl.parse "a - b"))

(* A small diamond structure for hand-checked facts:
   0 -> 1, 0 -> 2; 1 -> 3; 2 -> 3; 3 -> 3.  p at 1, 3; q at 2. *)
let diamond =
  Kripke.make ~nstates:4 ~initial:0
    ~successors:[| [ 1; 2 ]; [ 3 ]; [ 3 ]; [ 3 ] |]
    ~ap:[| "p"; "q" |]
    ~labels:
      [| [| false; false |]; [| true; false |]; [| false; true |];
         [| true; false |] |]

let test_modalities () =
  let holds s = Ctl.holds diamond (Ctl.parse_exn s) in
  check "EX p" true (holds "EX p");
  check "AX p" false (holds "AX p");
  check "EX q" true (holds "EX q");
  check "EF q" true (holds "EF q");
  check "AF p" true (holds "AF p") (* both branches reach p *);
  check "AG p" false (holds "AG p");
  check "EG !q" true (holds "EG !q") (* via 1 then 3 forever *);
  check "AF q" false (holds "AF q");
  check "E (true U q)" true (holds "E (true U q)");
  check "A (true U p)" true (holds "A (true U p)");
  check "E (!p U q)" true (holds "E (!p U q)");
  check "A (!p U q)" false (holds "A (!p U q)")

let test_ag_ax_fact () =
  (* State-by-state check of AG (p -> AX p): p holds at 1 and 3, and all
     their successors satisfy p, so the formula holds everywhere. *)
  let v = Ctl.sat diamond (Ctl.parse_exn "AG (p -> AX p)") in
  Alcotest.(check (array bool)) "AG (p -> AX p) everywhere"
    [| true; true; true; true |] v

let test_dualities () =
  (* On random structures: AG f = !EF !f, AF f = !EG !f, AX f = !EX !f. *)
  List.iter
    (fun seed ->
      let k = Kripke.random ~seed ~nstates:6 ~ap:[| "p"; "q" |]
          ~density:0.3 () in
      let f = Ctl.parse_exn "p -> EX q" in
      let eq a b = Ctl.sat k a = Ctl.sat k b in
      check "AG dual" true (eq (Ctl.AG f) (Ctl.Not (Ctl.EF (Ctl.Not f))));
      check "AF dual" true (eq (Ctl.AF f) (Ctl.Not (Ctl.EG (Ctl.Not f))));
      check "AX dual" true (eq (Ctl.AX f) (Ctl.Not (Ctl.EX (Ctl.Not f))));
      check "EF via EU" true (eq (Ctl.EF f) (Ctl.EU (Ctl.True, f)));
      check "AU expansion" true
        (eq
           (Ctl.AU (Ctl.Prop "p", Ctl.Prop "q"))
           (Ctl.Or
              (Ctl.Prop "q",
               Ctl.And (Ctl.Prop "p", Ctl.AX (Ctl.AU (Ctl.Prop "p", Ctl.Prop "q")))))))
    [ 1; 2; 3; 4; 5 ]

let test_mutex_properties () =
  let k = Kripke.mutex () in
  let holds s = Ctl.holds k (Ctl.parse_exn s) in
  check "safety: AG !(c1 & c2)" true (holds "AG !(c1 & c2)");
  check "liveness: AG (t1 -> AF c1)" true (holds "AG (t1 -> AF c1)");
  check "liveness: AG (t2 -> AF c2)" true (holds "AG (t2 -> AF c2)");
  check "non-blocking: AG (n1 -> EF t1)" true (holds "AG (n1 -> EF t1)");
  (* Without the trying step a process cannot enter. *)
  check "AG (n1 -> !EX c1)" true (holds "AG (n1 -> !EX c1)");
  check "not AF c1 (may idle in n)" false (holds "AF c1");
  check "EF c1" true (holds "EF c1")

let test_peterson_properties () =
  let k = Kripke.peterson () in
  let holds s = Ctl.holds k (Ctl.parse_exn s) in
  (* The algorithm's safety theorem. *)
  check "mutual exclusion" true (holds "AG !(c1 & c2)");
  check "reachable criticals" true (holds "EF c1 & EF c2");
  (* Raw interleaving admits starvation... *)
  check "starvation possible" false (holds "AG (wait1 -> AF c1)");
  (* ...but a waiting process can always eventually get in... *)
  check "entry always possible" true (holds "AG (wait1 -> EF c1)");
  (* ...and under fairness on process 1's progress it must. *)
  let progress1 =
    [ Array.init k.Kripke.nstates (fun q ->
          Kripke.holds k q "c1" || Kripke.holds k q "idle1") ]
  in
  check "fair entry" true
    (Fair.holds k progress1 (Ctl.parse_exn "AG (wait1 -> AF c1)"))

let test_bounded_buffer_properties () =
  let k = Kripke.bounded_buffer ~capacity:2 in
  let holds s = Ctl.holds k (Ctl.parse_exn s) in
  check "can fill" true (holds "EF full");
  check "can always drain" true (holds "AG EF empty");
  check "full is escapable" true (holds "AG (full -> EX !full)");
  check "not always eventually full" false (holds "AF full")

let test_philosophers_properties () =
  let k = Kripke.dining_philosophers 3 in
  let holds s = Ctl.holds k (Ctl.parse_exn s) in
  check "some philosopher can eat" true (holds "EF eat0");
  check "no adjacent eating" true (holds "AG !(eat0 & eat1)");
  check "hungry may starve (no fairness)" false
    (holds "AG (hungry0 -> AF eat0)");
  check "hungry can eventually eat" true
    (holds "AG (hungry0 -> EF eat0)")

let test_ctlstar_limits () =
  let k = Kripke.token_ring 3 in
  let tok0 = Ctlstar.prop_pred k "tok0" in
  check "ring: AGF tok0" true (Ctlstar.a_gf k ~pred:tok0).(0);
  check "ring: not EFG tok0" false (Ctlstar.e_fg k ~pred:tok0).(0);
  check "ring: EGF tok0" true (Ctlstar.e_gf k ~pred:tok0).(0);
  check "ring: not AFG tok0" false (Ctlstar.a_fg k ~pred:tok0).(0);
  (* Branching case: diamond with a p-cycle on one side only. *)
  let k2 =
    Kripke.make ~nstates:3 ~initial:0
      ~successors:[| [ 1; 2 ]; [ 1 ]; [ 2 ] |]
      ~ap:[| "p" |]
      ~labels:[| [| false |]; [| true |]; [| false |] |]
  in
  let p = Ctlstar.prop_pred k2 "p" in
  check "EGF p (go left)" true (Ctlstar.e_gf k2 ~pred:p).(0);
  check "not AGF p (go right)" false (Ctlstar.a_gf k2 ~pred:p).(0);
  check "EFG p" true (Ctlstar.e_fg k2 ~pred:p).(0);
  check "EFG !p" true
    (Ctlstar.e_fg k2 ~pred:(fun q -> not (p q))).(0);
  check "not AFG p" false (Ctlstar.a_fg k2 ~pred:p).(0)

(* --- Witness extraction --- *)

module Witness = Sl_ctl.Witness

let test_witness_extraction () =
  let k = Kripke.mutex () in
  let q0 = k.Kripke.initial in
  (* EF c1 holds: witness reaches a c1 state. *)
  (match Witness.witness k (Ctl.parse_exn "EF c1") q0 with
  | None -> Alcotest.fail "EF c1 should have a witness"
  | Some p ->
      check "EF path valid" true (Witness.check_path k p);
      check "EF path hits c1" true
        (List.exists (fun s -> Kripke.holds k s "c1")
           (p.Witness.spoke @ p.Witness.cycle)));
  (* EG !c1 holds (idle forever): all states on the path satisfy !c1. *)
  (match Witness.witness k (Ctl.parse_exn "EG !c1") q0 with
  | None -> Alcotest.fail "EG !c1 should have a witness"
  | Some p ->
      check "EG path valid" true (Witness.check_path k p);
      check "EG path avoids c1" true
        (List.for_all (fun s -> not (Kripke.holds k s "c1"))
           (p.Witness.spoke @ p.Witness.cycle)));
  (* E (!c1 U c1): until witness. *)
  (match Witness.witness k (Ctl.parse_exn "E (!c1 U c1)") q0 with
  | None -> Alcotest.fail "EU should have a witness"
  | Some p ->
      check "EU path valid" true (Witness.check_path k p);
      let rec demonstrates i =
        if Kripke.holds k (Witness.states_of_path p i) "c1" then true
        else if i > k.Kripke.nstates + 2 then false
        else
          (not (Kripke.holds k (Witness.states_of_path p i) "c1"))
          && demonstrates (i + 1)
      in
      check "EU path demonstrates" true (demonstrates 0));
  (* EG c1 fails at the initial state: no witness. *)
  check "no witness for EG c1" true
    (Witness.witness k (Ctl.parse_exn "EG c1") q0 = None)

let test_counterexamples () =
  let k = Kripke.mutex () in
  let q0 = k.Kripke.initial in
  (* AF c1 fails; counterexample: a path avoiding c1 forever. *)
  (match Witness.counterexample k (Ctl.parse_exn "AF c1") q0 with
  | None -> Alcotest.fail "AF c1 should be refuted"
  | Some p ->
      check "cex valid" true (Witness.check_path k p);
      check "cex avoids c1" true
        (List.for_all (fun s -> not (Kripke.holds k s "c1"))
           (p.Witness.spoke @ p.Witness.cycle)));
  (* AG !(c1 & c2) holds: no counterexample. *)
  check "no cex for mutual exclusion" true
    (Witness.counterexample k (Ctl.parse_exn "AG !(c1 & c2)") q0 = None);
  (* A (n1 U c1) fails (may never leave n1... and c1 unreachable without
     t1): some counterexample exists. *)
  match Witness.counterexample k (Ctl.parse_exn "A (n1 U c1)") q0 with
  | None -> Alcotest.fail "AU should be refuted"
  | Some p -> check "AU cex valid" true (Witness.check_path k p)

let prop_witness_random =
  QCheck.Test.make ~name:"random structures: witnesses are valid paths"
    ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let k = Kripke.random ~seed ~nstates:6 ~ap:[| "p"; "q" |]
          ~density:0.3 () in
      let formulas =
        [ Ctl.parse_exn "EF p"; Ctl.parse_exn "EG p";
          Ctl.parse_exn "E (p U q)"; Ctl.parse_exn "EX q" ]
      in
      List.for_all
        (fun f ->
          let holds = (Ctl.sat k f).(0) in
          match Witness.witness k f 0 with
          | Some p -> holds && Witness.check_path k p
          | None -> not holds)
        formulas)

(* --- Fair CTL --- *)

let test_fair_degenerates_to_ctl () =
  (* Empty constraints: fair CTL = CTL on every state. *)
  List.iter
    (fun seed ->
      let k = Kripke.random ~seed ~nstates:6 ~ap:[| "p"; "q" |]
          ~density:0.3 () in
      List.iter
        (fun s ->
          let f = Ctl.parse_exn s in
          Alcotest.(check (array bool))
            ("no constraints: " ^ s)
            (Ctl.sat k f) (Fair.sat k [] f))
        [ "EG p"; "AF q"; "E (p U q)"; "A (p U q)"; "AG (p -> EX q)" ])
    [ 11; 12; 13 ]

let test_fair_textbook () =
  (* 0(p) -> 0, 0 -> 1(q), 1 -> 1. Under the constraint "visit state 1
     infinitely often", the lazy self-loop at 0 is unfair. *)
  let k =
    Kripke.make ~nstates:2 ~initial:0
      ~successors:[| [ 0; 1 ]; [ 1 ] |]
      ~ap:[| "p"; "q" |]
      ~labels:[| [| true; false |]; [| false; true |] |]
  in
  let c = [ [| false; true |] ] in
  check "classically EG p" true (Ctl.holds k (Ctl.parse_exn "EG p"));
  check "fairly not EG p" false (Fair.holds k c (Ctl.parse_exn "EG p"));
  check "classically not AF q" false (Ctl.holds k (Ctl.parse_exn "AF q"));
  check "fairly AF q" true (Fair.holds k c (Ctl.parse_exn "AF q"));
  (* Both states start fair paths. *)
  Alcotest.(check (array bool)) "fair states" [| true; true |]
    (Fair.fair_states k c);
  (* An unsatisfiable constraint kills all fair paths. *)
  Alcotest.(check (array bool)) "no fair paths"
    [| false; false |]
    (Fair.fair_states k [ [| false; false |] ])

let test_fair_mutex_progress () =
  (* Classically a process may idle in its non-critical section forever,
     so AF c1 fails; requiring the scheduler to see process 1 trying or
     critical infinitely often forces entry. *)
  let k = Kripke.mutex () in
  let trying_or_critical =
    Array.init k.Kripke.nstates (fun q ->
        Kripke.holds k q "t1" || Kripke.holds k q "c1")
  in
  check "classically not AF c1" false (Ctl.holds k (Ctl.parse_exn "AF c1"));
  check "fairly AF c1" true
    (Fair.holds k [ trying_or_critical ] (Ctl.parse_exn "AF c1"));
  (* Safety is unaffected by fairness. *)
  check "fair safety" true
    (Fair.holds k [ trying_or_critical ] (Ctl.parse_exn "AG !(c1 & c2)"))

let test_fair_philosophers () =
  (* Weak move-fairness is not enough against the adversarial scheduler,
     but requiring philosopher 0 to eat-or-think infinitely often
     trivially yields progress; the interesting direction is that plain
     hunger-fairness on OTHERS does not help. *)
  let k = Kripke.dining_philosophers 3 in
  let eats0 = Fair.constraint_of_prop k "eat0" in
  check "with own eating fair, AF eat0 from hungry" true
    (Fair.holds k [ eats0 ] (Ctl.parse_exn "AG (hungry0 -> AF eat0)"));
  check "classically starvation possible" false
    (Ctl.holds k (Ctl.parse_exn "AG (hungry0 -> AF eat0)"))

(* --- The Section 4.3 table --- *)

let expect name es us el ul (rows : Examples.row list) =
  let r =
    List.find (fun r -> r.Examples.property.Tclosure.name = name) rows
  in
  let c = r.Examples.classification in
  Alcotest.(check (list bool))
    (name ^ " ES/US/EL/UL")
    [ es; us; el; ul ]
    [ c.Tclosure.existentially_safe; c.Tclosure.universally_safe;
      c.Tclosure.existentially_live; c.Tclosure.universally_live ]

let test_q_table () =
  let rows = Examples.table ~max_depth:3 () in
  (*              ES     US     EL     UL  *)
  expect "q0" true true false false rows;
  expect "q1" true true false false rows;
  expect "q2" true true false false rows;
  expect "q3a" false false false false rows;
  expect "q3b" false false false false rows;
  expect "q4a" false false false true rows;
  expect "q4b" false false true true rows;
  expect "q5a" false false false true rows;
  expect "q5b" false false true true rows;
  expect "q6" true true true true rows

let test_paper_closure_facts () =
  let sample = Examples.sample in
  let fcl p = Tclosure.fcl_mem p ~max_depth:3 in
  let ncl p = Tclosure.ncl_mem p ~max_depth:3 in
  (* fcl.q3a = q1 (Section 4.3). *)
  check "fcl q3a = q1" true
    (List.for_all
       (fun y -> fcl Examples.q3a y = Examples.q1.Tclosure.mem y)
       sample);
  (* ncl.q3b = q1 and fcl.q3b = q1. *)
  check "ncl q3b = q1" true
    (List.for_all
       (fun y -> ncl Examples.q3b y = Examples.q1.Tclosure.mem y)
       sample);
  check "fcl q3b = q1" true
    (List.for_all
       (fun y -> fcl Examples.q3b y = Examples.q1.Tclosure.mem y)
       sample);
  (* ncl.q3a is strictly between: it differs from q1 (the paper's
     two-path witness) and from q3a (sequences). *)
  check "ncl q3a <> q1" true
    (List.exists
       (fun y -> ncl Examples.q3a y <> Examples.q1.Tclosure.mem y)
       sample);
  check "ncl q3a <> q3a" true
    (List.exists
       (fun y -> ncl Examples.q3a y <> Examples.q3a.Tclosure.mem y)
       sample);
  (* fcl.q4a = fcl.q5a = A_tot but ncl differs (the same witness). *)
  check "fcl q4a total" true (List.for_all (fcl Examples.q4a) sample);
  check "fcl q5a total" true (List.for_all (fcl Examples.q5a) sample);
  check "ncl q4a not total" true
    (not (List.for_all (ncl Examples.q4a) sample));
  check "ncl q5a not total" true
    (not (List.for_all (ncl Examples.q5a) sample));
  (* ncl.q4b = ncl.q5b = A_tot. *)
  check "ncl q4b total" true (List.for_all (ncl Examples.q4b) sample);
  check "ncl q5b total" true (List.for_all (ncl Examples.q5b) sample)

let test_closure_lattice_facts () =
  (* Pointwise ncl <= fcl (more prefixes to satisfy) and extensivity
     p <= fcl p, p <= ncl p on the sample — the hypotheses Theorem 4
     needs. *)
  List.iter
    (fun p ->
      check (p.Tclosure.name ^ ": ncl <= fcl") true
        (List.for_all
           (fun y ->
             (not (Tclosure.ncl_mem p ~max_depth:3 y))
             || Tclosure.fcl_mem p ~max_depth:3 y)
           Examples.sample);
      check (p.Tclosure.name ^ ": extensive") true
        (List.for_all
           (fun y ->
             (not (p.Tclosure.mem y)) || Tclosure.ncl_mem p ~max_depth:3 y)
           Examples.sample))
    Examples.all

let test_theorem5_preconditions () =
  (* q4a (and q5a) satisfy Theorem 5's hypotheses with cl1 = ncl and
     cl2 = fcl: fcl-dense but not ncl-dense — hence (by Theorem 5, proved
     exhaustively at the lattice level in test_core) they cannot be split
     into a universally-safe and an existentially-live part, which is the
     paper's "fourth decomposition fails" point with the AFp witness. *)
  let rows = Examples.table ~max_depth:3 () in
  let get name =
    (List.find (fun r -> r.Examples.property.Tclosure.name = name) rows)
      .Examples.classification
  in
  List.iter
    (fun name ->
      let c = get name in
      check (name ^ " UL") true c.Tclosure.universally_live;
      check (name ^ " not EL") false c.Tclosure.existentially_live)
    [ "q4a"; "q5a" ]

let tests =
  [ Alcotest.test_case "parser" `Quick test_parser;
    Alcotest.test_case "modalities on a diamond" `Quick test_modalities;
    Alcotest.test_case "AG/AX interaction" `Quick test_ag_ax_fact;
    Alcotest.test_case "dualities" `Quick test_dualities;
    Alcotest.test_case "mutex properties" `Quick test_mutex_properties;
    Alcotest.test_case "peterson properties" `Quick
      test_peterson_properties;
    Alcotest.test_case "bounded buffer properties" `Quick
      test_bounded_buffer_properties;
    Alcotest.test_case "philosophers properties" `Quick
      test_philosophers_properties;
    Alcotest.test_case "CTL* limit modalities" `Quick test_ctlstar_limits;
    Alcotest.test_case "witness extraction" `Quick
      test_witness_extraction;
    Alcotest.test_case "counterexamples" `Quick test_counterexamples;
    QCheck_alcotest.to_alcotest prop_witness_random;
    Alcotest.test_case "fair CTL degenerates" `Quick
      test_fair_degenerates_to_ctl;
    Alcotest.test_case "fair CTL textbook" `Quick test_fair_textbook;
    Alcotest.test_case "fair mutex progress" `Quick
      test_fair_mutex_progress;
    Alcotest.test_case "fair philosophers" `Quick test_fair_philosophers;
    Alcotest.test_case "Section 4.3 table" `Slow test_q_table;
    Alcotest.test_case "paper closure facts" `Slow
      test_paper_closure_facts;
    Alcotest.test_case "closure lattice facts" `Slow
      test_closure_lattice_facts;
    Alcotest.test_case "theorem 5 preconditions" `Slow
      test_theorem5_preconditions ]
